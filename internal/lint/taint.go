package lint

import (
	"fmt"
	"go/types"
	"sort"
	"strings"
)

// The determinism-taint analyzer ([taint]) closes the wrapper-function
// escape hatch of the syntactic determinism pass: a helper defined in a
// NON-deterministic package that transitively reaches time.Now (or any
// wall-clock function) or a global math/rand draw is flagged at every
// call site inside a deterministic package. The syntactic pass cannot
// see this — the deterministic file contains neither a time nor a
// math/rand import, just an innocent-looking helper call.
//
// Taint semantics, chosen so each root cause is reported exactly once:
//
//   - Roots are functions in non-deterministic module packages whose
//     bodies contain an unsuppressed sink call. Sinks under a
//     //dwrlint:allow wallclock/globalrand directive never seed taint —
//     the directive asserts the site is behaviorally harmless, and
//     propagating from it would force every caller to re-annotate.
//   - Sinks inside deterministic packages don't seed taint either: the
//     syntactic determinism analyzer already flags them in place.
//   - Taint flows backward over static call edges through any module
//     function. A finding is emitted where a deterministic package calls
//     a tainted function that lives in a non-deterministic package;
//     tainted det-package intermediaries are not re-reported at their
//     own call sites (their bodies already carry the finding).
//
// Only statically resolvable edges exist in the graph (direct calls,
// concrete-receiver methods); interface dispatch and function values are
// invisible, a documented soundness limit shared with every call-graph
// linter that stops short of whole-program pointer analysis.

// taintInfo is one tainted function's shortest witness chain to a sink.
type taintInfo struct {
	next *types.Func // next hop toward the sink (nil at the root)
	sink string      // e.g. "time.Now" (set at the root)
	rule string      // "wallclock" or "globalrand"
}

func analyzeTaintModule(m *module, cfg Config, report moduleReport) {
	if m.funcs == nil {
		return
	}
	// Reverse call edges restricted to module-internal callees.
	callers := map[*types.Func][]*funcFacts{}
	var order []*types.Func
	for _, ff := range m.funcs {
		order = append(order, ff.obj)
		for _, c := range ff.calls {
			if _, ok := m.funcs[c.callee]; ok {
				callers[c.callee] = append(callers[c.callee], ff)
			}
		}
	}
	sort.Slice(order, func(i, j int) bool { return funcKey(order[i]) < funcKey(order[j]) })

	// Seed from non-deterministic packages' unsuppressed sinks.
	tainted := map[*types.Func]taintInfo{}
	var frontier []*types.Func
	for _, obj := range order {
		ff := m.funcs[obj]
		if cfg.Deterministic[ff.pkg.unit] {
			continue
		}
		for _, s := range ff.sinks {
			if s.allowed {
				continue
			}
			tainted[obj] = taintInfo{sink: s.name, rule: s.rule}
			frontier = append(frontier, obj)
			break
		}
	}
	// Breadth-first propagation to callers gives shortest witness paths.
	for len(frontier) > 0 {
		var next []*types.Func
		for _, f := range frontier {
			cs := callers[f]
			sort.Slice(cs, func(i, j int) bool { return funcKey(cs[i].obj) < funcKey(cs[j].obj) })
			for _, caller := range cs {
				if _, seen := tainted[caller.obj]; seen {
					continue
				}
				ti := tainted[f]
				tainted[caller.obj] = taintInfo{next: f, sink: ti.sink, rule: ti.rule}
				next = append(next, caller.obj)
			}
		}
		frontier = next
	}

	// Report deterministic-package call sites whose callee is a tainted
	// function living in a non-deterministic package.
	for _, obj := range order {
		ff := m.funcs[obj]
		if !cfg.Deterministic[ff.pkg.unit] {
			continue
		}
		for _, c := range ff.calls {
			callee, ok := m.funcs[c.callee]
			if !ok || cfg.Deterministic[callee.pkg.unit] {
				continue
			}
			ti, bad := tainted[c.callee]
			if !bad {
				continue
			}
			report(ff.file, c.pos, "taint", c.callee.Name(), fmt.Sprintf(
				"call of %s in deterministic package %s transitively reaches %s (%s): thread virtual time or a seeded source through the helper, or annotate //dwrlint:allow taint <why>",
				funcDisplay(c.callee), ff.pkg.unit, ti.sink, witnessPath(m, c.callee, tainted)))
		}
	}
}

// witnessPath renders the shortest chain "pkg.F -> pkg.G -> time.Now".
func witnessPath(m *module, f *types.Func, tainted map[*types.Func]taintInfo) string {
	var hops []string
	for f != nil {
		hops = append(hops, funcDisplay(f))
		ti := tainted[f]
		if ti.next == nil {
			hops = append(hops, ti.sink)
			break
		}
		f = ti.next
	}
	return strings.Join(hops, " -> ")
}

// funcDisplay renders pkg.Func or pkg.(Recv).Method for messages.
func funcDisplay(f *types.Func) string {
	pkg := ""
	if f.Pkg() != nil {
		pkg = f.Pkg().Name() + "."
	}
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			return pkg + "(" + n.Obj().Name() + ")." + f.Name()
		}
	}
	return pkg + f.Name()
}

// funcKey is a stable sort key for deterministic graph walks.
func funcKey(f *types.Func) string {
	p := ""
	if f.Pkg() != nil {
		p = f.Pkg().Path()
	}
	return p + "\x00" + f.FullName()
}
