// Fixture: determinism violations in a query mediator (the directory
// base name "mediator" is in the deterministic set, covering the
// collection-selection serving path). Selection decisions are cache-key
// material — the federated result cache names the chosen site subset —
// so a mediator that timestamps its statistics on the wall clock,
// breaks score ties with the global rand, or draws sampling decisions
// from a generator of invisible provenance makes routing (and with it
// the byte-identity of two replays) machine-dependent.
// Parse-only — the go tool never builds testdata.
package mediator

import (
	"math/rand"
	"time"
)

type siteStats struct {
	sites       []int
	scores      []float64
	refreshedAt time.Time
}

// markFresh stamps a statistics refresh with the real clock, so the
// staleness decision below replays differently on every run.
func (s *siteStats) markFresh() {
	s.refreshedAt = time.Now() // want wallclock
}

// stale gates the rebuild-vs-refresh decision on wall-clock age instead
// of the store's manifest generation.
func (s *siteStats) stale() bool {
	return time.Since(s.refreshedAt) > time.Minute // want wallclock
}

// tieBreak orders equal-scored sites with the process-global source, so
// which site a query prunes depends on everything else that has drawn
// from it.
func (s *siteStats) tieBreak() {
	rand.Shuffle(len(s.sites), func(i, j int) { // want globalrand
		s.sites[i], s.sites[j] = s.sites[j], s.sites[i]
	})
}

// sampleRecall decides which answers get a recall sample from a
// generator whose source is invisible at the call site; outside a test
// this must flow through randx.New so the seed stays auditable.
func sampleRecall(src rand.Source, every int) bool {
	rng := rand.New(src) // want seed
	return rng.Intn(every) == 0
}
