// Fixture: deprecated qproc setter shims. The rule applies in every
// package (this directory's unit, "qprocuse", is deliberately not in
// the deterministic set).
package qprocuse

type engine struct{}

func (engine) SetWorkers(int)         {}
func (engine) SetResultCache(any)     {}
func (engine) SetPostingsCache(int64) {}
func (engine) Workers() int           { return 0 }

func configure(e engine) {
	e.SetWorkers(4)             // want deprecated
	e.SetResultCache(nil)       // want deprecated
	e.SetPostingsCache(1 << 16) // want deprecated
	_ = e.Workers()
	// SetDefaultWorkers resolves cross-file (same-package calls whose
	// declaration the parser cannot see in this file), like the real
	// qproc package-level shims.
	SetDefaultWorkers(1) // want deprecated
	//dwrlint:allow deprecated regression coverage for the shim itself
	e.SetWorkers(0)
}
