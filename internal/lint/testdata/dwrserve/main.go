// Fixture: the deadline rule also covers cmd/dwrserve (unit
// "dwrserve").
package main

type engine interface {
	QueryTopK(terms []string, k int) int
}

func serve(e engine, terms []string) int {
	return e.QueryTopK(terms, 10) // want deadline
}
