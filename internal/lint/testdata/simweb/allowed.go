// Fixture: directive-exempted sites. These produce Allowed findings —
// invisible to the normal run, listed by -fixlist.
package simweb

import "time"

// trailingAllow exempts with a same-line directive.
func trailingAllow() time.Time {
	return time.Now() //dwrlint:allow wallclock reporting-only timestamp
}

// precedingAllow exempts with a directive on the line above.
func precedingAllow() {
	//dwrlint:allow wallclock coarse backoff outside the replayed path
	time.Sleep(time.Millisecond)
}

// wrongRule shows a directive for one rule does not leak to another:
// the deadline allow below is irrelevant here, so the wallclock finding
// stands.
func wrongRule() time.Time {
	//dwrlint:allow deadline justification for the wrong rule
	return time.Now() // want wallclock
}
