// Fixture: determinism violations in a deterministic package (the
// directory base name "simweb" is in the deterministic set). Parse-only
// — the go tool never builds testdata.
package simweb

import (
	"math/rand"
	"time"
)

func wallclockSites() float64 {
	start := time.Now()          // want wallclock
	time.Sleep(time.Millisecond) // want wallclock
	elapsed := time.Since(start) // want wallclock
	_ = time.After(time.Second)  // want wallclock
	f := time.Now                // want wallclock
	_ = f
	return elapsed.Seconds()
}

func globalRandSites() int {
	rand.Seed(42)                      // want globalrand
	v := rand.Intn(10)                 // want globalrand
	_ = rand.Float64()                 // want globalrand
	rand.Shuffle(3, func(int, int) {}) // want globalrand
	return v
}

// shadowed proves identifier resolution: a local variable named time is
// not the package.
func shadowed() int {
	type clock struct{ Now func() int }
	time := clock{Now: func() int { return 7 }}
	return time.Now()
}
