// Fixture: determinism violations in a broker wave scheduler (the
// directory base name "qproc" is in the deterministic set, covering the
// threshold-sharing scatter path). A wave schedule is exactly where
// these bugs creep in: jittering wave launches on the wall clock or
// ordering equal-bound partitions with the global rand makes the skip
// decisions — and with them the per-query accounting — replay-dependent.
// Parse-only — the go tool never builds testdata.
package qproc

import (
	"math/rand"
	"time"
)

type wave struct {
	parts  []int
	bounds []float64
}

// launchWaves paces the scatter on the real clock, so the number of
// waves a replay sees depends on machine speed.
func launchWaves(ws []wave) {
	deadline := time.Now().Add(time.Millisecond) // want wallclock
	for range ws {
		if time.Now().After(deadline) { // want wallclock
			return
		}
	}
}

// tieOrder breaks equal partition bounds with the process-global source,
// so which partition a wave skips depends on everything else that has
// drawn from it.
func tieOrder(w wave) {
	rand.Shuffle(len(w.parts), func(i, j int) { // want globalrand
		w.parts[i], w.parts[j] = w.parts[j], w.parts[i]
	})
}

// jitterSeed perturbs the shared threshold with a global draw before
// seeding the next wave.
func jitterSeed(thr float64) float64 {
	return thr * (1 - rand.Float64()*1e-9) // want globalrand
}
