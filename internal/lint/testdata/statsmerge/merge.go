// Fixture: stats-merge completeness. evalStats stands in for the
// per-partition counter structs (rank.EvalStats, QueryResult); the
// merge functions fold them into queryTotals aggregates.
package statsmerge

type evalStats struct {
	Decoded int
	Lists   int
	Bytes   int64
	Label   string // not countable: never summed
}

type queryTotals struct {
	Decoded int
	Lists   int
	Bytes   int64
}

// mergeBad folds two sibling counters and silently drops Lists — the
// under-reporting class the analyzer exists for.
func mergeBad(dst *queryTotals, parts []evalStats) {
	for _, es := range parts {
		dst.Decoded += es.Decoded // want statsmerge
		dst.Bytes += es.Bytes
	}
}

// mergeGood folds every countable field.
func mergeGood(dst *queryTotals, parts []evalStats) {
	for _, es := range parts {
		dst.Decoded += es.Decoded
		dst.Lists += es.Lists
		dst.Bytes += es.Bytes
	}
}

// mergeMaxRead consumes Lists with a max-fold instead of a sum: any
// read off the source root counts as accounted for.
func mergeMaxRead(dst *queryTotals, parts []evalStats) {
	for _, es := range parts {
		dst.Decoded += es.Decoded
		dst.Bytes += es.Bytes
		if es.Lists > dst.Lists {
			dst.Lists = es.Lists
		}
	}
}

// project accumulates into scalar locals: a reporting projection, not a
// merge, so dropping fields here is fine.
func project(parts []evalStats) int {
	decoded := 0
	for _, es := range parts {
		decoded += es.Decoded
	}
	return decoded
}

// mergeAllowed drops Lists under a justified per-field exemption.
func mergeAllowed(dst *queryTotals, parts []evalStats) {
	for _, es := range parts {
		//dwrlint:allow statsmerge:Lists list counts are recomputed from the posting ledger downstream
		dst.Decoded += es.Decoded
		dst.Bytes += es.Bytes
	}
}
