// Fixture: a file-level allow covers every wallclock site in the file.
//
//dwrlint:file-allow wallclock whole file reports build timings, which are measurement, not behavior
package experiments

import "time"

func timedA() time.Time { return time.Now() }

func timedB() float64 { return time.Since(time.Now()).Seconds() }
