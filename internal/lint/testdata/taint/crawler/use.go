// Fixture: a deterministic package (unit "crawler") calling helpers
// from a non-deterministic one. The file imports neither time nor
// math/rand, so the syntactic determinism pass sees nothing — only the
// interprocedural taint analysis can flag the leaking helpers.
package crawler

import (
	"time"

	"dwr/internal/lint/testdata/taint/clockutil"
)

// directLeak calls the sink's wrapper one hop away.
func directLeak() time.Time {
	return clockutil.WallNow() // want taint
}

// transitiveLeak reaches the sink through two hops.
func transitiveLeak(t time.Time) float64 {
	return clockutil.Elapsed(t) // want taint
}

// pureUse calls a helper with no sink below it: no finding.
func pureUse() int {
	return clockutil.SafeID(7)
}

// allowedSinkUse calls a helper whose sink carries its own allow
// directive; suppressed sinks never seed taint, so no finding.
func allowedSinkUse() time.Time {
	return clockutil.AllowedNow()
}

// annotatedLeak is the audited-exemption form: the call is tainted but
// the site is justified, so it lands on the fixlist, not the violations.
func annotatedLeak() time.Time {
	return clockutil.WallNow() //dwrlint:allow taint startup banner only; never inside a replay
}
