// Fixture: a NON-deterministic helper package (unit "clockutil" is not
// in the Deterministic set). Sinks here seed the taint analysis; the
// findings appear at the deterministic call sites in ../crawler.
package clockutil

import "time"

// WallNow is a taint root: a direct, unsuppressed wall-clock sink.
func WallNow() time.Time {
	return time.Now()
}

// Elapsed is transitively tainted through WallNow.
func Elapsed(since time.Time) float64 {
	return WallNow().Sub(since).Seconds()
}

// SafeID is pure: no sink anywhere below it.
func SafeID(n int) int {
	return n*2654435761 + 1
}

// AllowedNow carries a justified allow, so it never seeds taint: the
// directive asserts the site is behaviorally harmless, and callers must
// not be forced to re-annotate.
func AllowedNow() time.Time {
	return time.Now() //dwrlint:allow wallclock reporting-only timestamp outside the replayed path
}
