// Fixture: concurrency discipline in a deterministic package (unit
// "queueing" is in the Deterministic set). Hand-rolled goroutines,
// channels, and selects are flagged; fan-out through internal/conc is
// the sanctioned form.
package queueing

import "dwr/internal/conc"

// disciplined fans out through conc.Do: ordered gather, no finding.
func disciplined(n int) []int {
	out := make([]int, n)
	conc.Do(n, 4, func(i int) { out[i] = i * i })
	return out
}

// bare hand-rolls the same fan-out with a goroutine and a channel.
func bare(n int) int {
	done := make(chan int) // want conc
	go func() {            // want conc
		done <- n * n
	}()
	return <-done
}

// waitEither races two channels: select wakes in scheduler order,
// which a replayable package must not observe.
func waitEither(a, b chan int) int {
	select { // want conc
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// allowedHandoff keeps a one-shot channel under a justified exemption.
func allowedHandoff() int {
	//dwrlint:allow conc:chan buffered one-shot handoff; no ordering is observable
	ch := make(chan int, 1)
	ch <- 1
	return <-ch
}
