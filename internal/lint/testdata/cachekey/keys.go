// Fixture: cache-key completeness. FooQueryOptions stands in for
// DocQueryOptions: K and Pruning change the answer and must be encoded;
// DeadlineMs only changes when the answer arrives and must not be.
package cachekey

import "fmt"

type FooQueryOptions struct {
	K          int
	Pruning    int
	DeadlineMs float64
}

// BadCacheKey drops Pruning: differently-pruned evaluations collide.
func BadCacheKey(terms string, opt FooQueryOptions) string { // want cachekey
	return fmt.Sprintf("%s|k=%d", terms, opt.K)
}

// LeakyCacheKey encodes the deadline, fragmenting the cache by budget.
func LeakyCacheKey(terms string, opt FooQueryOptions) string {
	return fmt.Sprintf("%s|k=%d|pr=%d|dl=%f", terms, opt.K, opt.Pruning, opt.DeadlineMs) // want cachekey
}

// GoodCacheKey encodes every result-affecting field and no budget field.
func GoodCacheKey(terms string, opt FooQueryOptions) string {
	return fmt.Sprintf("%s|k=%d|pr=%d", terms, opt.K, opt.Pruning)
}

// EscapeCacheKey stringifies the whole options value: every field
// reaches the key, including the forbidden budget field.
func EscapeCacheKey(terms string, opt FooQueryOptions) string { // want cachekey
	return terms + "|" + fmt.Sprint(opt)
}

// AllowedCacheKey drops Pruning under a justified per-field exemption.
//
//dwrlint:allow cachekey:Pruning this deployment pins one pruning strategy engine-wide
func AllowedCacheKey(terms string, opt FooQueryOptions) string {
	return fmt.Sprintf("%s|k=%d", terms, opt.K)
}

// IgnoredParamCacheKey never touches region, but callers pass it
// believing it is part of the key.
func IgnoredParamCacheKey(terms string, region int) string { // want cachekey
	return "r|" + terms
}
