// Fixture: determinism violations in an evaluator package (the
// directory base name "rank" is in the deterministic set, covering the
// block codec's pruned-evaluation path). A dynamic-pruning evaluator is
// exactly where these bugs creep in: timing a skip decision on the wall
// clock or breaking score ties with the global rand makes the "rank-
// identical to exhaustive" guarantee replay-dependent. Parse-only — the
// go tool never builds testdata.
package rank

import (
	"math/rand"
	"time"
)

type cursor struct{ doc int32 }

// skipDecision times block skips on the real clock — replays diverge
// between runs and machines.
func skipDecision(cs []cursor) bool {
	start := time.Now() // want wallclock
	for range cs {
	}
	return time.Since(start) < time.Microsecond // want wallclock
}

// tieBreak draws from the process-global source, so the top-k ordering
// depends on everything else that has drawn from it.
func tieBreak(a, b cursor) cursor {
	if rand.Intn(2) == 0 { // want globalrand
		return a
	}
	return b
}

// sampleBlocks reseeds the shared source and shuffles with it.
func sampleBlocks(blocks []int) {
	rand.Seed(99)                              // want globalrand
	rand.Shuffle(len(blocks), func(i, j int) { // want globalrand
		blocks[i], blocks[j] = blocks[j], blocks[i]
	})
}
