// Fixture: test files on serving paths are exempt from the deadline
// rule — stub engines legitimately implement and delegate QueryTopK.
package server

func stubDrive(q querier, terms []string) int {
	return q.QueryTopK(terms, 10)
}
