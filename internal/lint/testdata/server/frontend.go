// Fixture: deadline discipline on a serving path (unit "server").
package server

type querier interface {
	QueryTopK(terms []string, k int) int
	QueryTopKWithin(terms []string, k int, deadlineMs float64) int
}

func handle(q querier, terms []string, remainingMs float64) int {
	if remainingMs > 0 {
		return q.QueryTopKWithin(terms, 10, remainingMs)
	}
	return q.QueryTopK(terms, 10) // want deadline
}

func fallback(q querier, terms []string) int {
	//dwrlint:allow deadline engine exposes no deadline surface; nothing to propagate
	return q.QueryTopK(terms, 10)
}
