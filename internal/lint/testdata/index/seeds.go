// Fixture: seed-plumbing violations in a deterministic package, in a
// non-test file (where even an explicitly seeded rand.New must go
// through randx.New). The wall-clock-seeded line trips three rules at
// once: wallclock (time.Now), seed on the NewSource (clock-derived
// seed), and seed on the rand.New (non-test construction).
package index

import (
	"math/rand"
	"time"
)

func badSeeds() int {
	wall := rand.New(rand.NewSource(time.Now().UnixNano())) // want wallclock seed seed
	src := rand.NewSource(7)
	opaque := rand.New(src)                 // want seed
	explicit := rand.New(rand.NewSource(1)) // want seed
	return wall.Intn(2) + opaque.Intn(2) + explicit.Intn(2)
}
