// Fixture: in test files of deterministic packages an explicitly
// seeded rand.New(rand.NewSource(const)) is fine, but opaque and
// clock-derived sources are still flagged.
package index

import (
	"math/rand"
	"time"
)

func testSeeds() int {
	ok := rand.New(rand.NewSource(1))
	var src rand.Source
	opaque := rand.New(src)                             // want seed
	wall := rand.NewSource(time.Now().UnixNano() + 100) // want wallclock seed
	_ = wall
	return ok.Intn(2) + opaque.Intn(2)
}
