// Package lint is the dwrlint static-analysis suite: a stdlib-only
// analysis layer over the module that mechanically enforces the
// repository's determinism, accounting, caching, API-hygiene, and
// deadline-discipline invariants.
//
// The headline guarantees of this reproduction — byte-identical query
// results at any worker count, replayable fault scenarios, seeded load
// generation — rest on conventions: all randomness flows through
// internal/randx, deterministic packages never read the wall clock,
// fan-out goes through internal/conc's ordered gathers, cache keys
// encode every result-affecting option, gathers fold every counter, and
// serving paths propagate deadlines. One stray time.Now() or dropped
// counter silently breaks the paper-shape experiments, so the
// conventions are machine-checked here rather than reviewed-for.
//
// Analysis runs in two passes. The syntactic pass (go/parser, go/ast)
// inspects each selected file alone. The module pass (go/types)
// type-checks every selected directory — resolving module-internal
// imports straight from parsed source and stdlib imports from compiled
// export data, so no build step is needed — and builds a static call
// graph over everything loaded.
//
// The syntactic analyzers emit five rule ids:
//
//   - determinism: [wallclock] time.Now/Since/Sleep/... and
//     [globalrand] top-level math/rand calls in deterministic packages
//   - deprecated-api: [deprecated] calls to the qproc setter shims
//   - deadline-discipline: [deadline] QueryTopK where QueryTopKWithin
//     must be used so deadlines propagate
//   - seed-plumbing: [seed] *rand.Rand values not derived from
//     internal/randx (or an explicit seed in tests)
//
// The module analyzers emit four more:
//
//   - determinism-taint: [taint] a call, inside a deterministic
//     package, of a helper that transitively reaches a wall-clock or
//     global-rand sink through any chain of module functions
//   - cache-key completeness: [cachekey] a *CacheKey function that
//     fails to encode a result-affecting QueryOptions field, encodes a
//     Deadline/Budget field, or ignores a parameter
//   - stats-merge completeness: [statsmerge] an aggregation that folds
//     some counters of a source struct but silently drops another
//   - conc-discipline: [conc] bare go statements, raw make(chan), or
//     select in deterministic packages instead of internal/conc
//
// Intentional exceptions are annotated in the source:
//
//	//dwrlint:allow <rule> <justification>        (this line or the next)
//	//dwrlint:allow <rule>:<detail> <why>         (one field/construct only)
//	//dwrlint:file-allow <rule> <justification>   (whole file)
//
// Allowed sites are suppressed from normal output but remain auditable:
// the Fixlist (cmd/dwrlint -fixlist) prints every suppressed finding
// with its justification, and CI gates on the fixlist not growing
// (cmd/dwrlint -fixgate).
//
// To add an analyzer: implement moduleAnalyzer (or analyzer for purely
// syntactic checks), append it to moduleAnalyzers, pick a new rule id,
// and add a fixture directory under testdata/ with // want markers.
package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one rule violation (or, when Allowed, one audited
// exemption) at a source position.
type Finding struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	Rule string `json:"rule"`
	Msg  string `json:"msg"`

	// Detail qualifies findings of the module analyzers down to a single
	// field or construct (e.g. the dropped counter's name), so one line
	// can carry several findings and directives can suppress exactly one
	// of them: //dwrlint:allow <rule>:<detail> <why>.
	Detail string `json:"detail,omitempty"`

	// Allowed marks a finding suppressed by a //dwrlint:allow or
	// //dwrlint:file-allow directive; Justification is the directive's
	// trailing free text.
	Allowed       bool   `json:"allowed,omitempty"`
	Justification string `json:"justification,omitempty"`
}

// String renders the canonical "file:line: [rule] message" form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.File, f.Line, f.Rule, f.Msg)
}

// Config selects which packages each analyzer applies to.
type Config struct {
	// Deterministic is the set of package units (directory base names)
	// whose results must be a pure function of their seeds. The
	// determinism and seed-plumbing analyzers only fire inside these.
	Deterministic map[string]bool

	// DeadlineUnits is the set of units whose query call sites must
	// propagate deadlines (the serving paths).
	DeadlineUnits map[string]bool
}

// DefaultConfig returns the repository's invariant configuration.
func DefaultConfig() Config {
	det := map[string]bool{}
	for _, p := range []string{
		"simweb", "faultsim", "index", "qproc", "rank", "crawler",
		"queueing", "loadgen", "cache", "chash", "partition",
		"selection", "replication", "experiments", "mediator",
	} {
		det[p] = true
	}
	return Config{
		Deterministic: det,
		DeadlineUnits: map[string]bool{"server": true, "dwrserve": true},
	}
}

// fileCtx is one parsed file plus the lookups analyzers need.
type fileCtx struct {
	fset   *token.FileSet
	file   *ast.File
	path   string // as reported in findings
	unit   string // directory base name, e.g. "qproc"
	isTest bool
}

// importName returns the local identifier under which the file imports
// importPath ("" if not imported, or imported as _ or .).
func (fc *fileCtx) importName(importPath string) string {
	for _, imp := range fc.file.Imports {
		p := strings.Trim(imp.Path.Value, `"`)
		if p != importPath {
			continue
		}
		if imp.Name != nil {
			if imp.Name.Name == "_" || imp.Name.Name == "." {
				return ""
			}
			return imp.Name.Name
		}
		base := p
		if i := strings.LastIndex(p, "/"); i >= 0 {
			base = p[i+1:]
		}
		return base
	}
	return ""
}

// isPkgSel reports whether expr is a selector pkg.name where pkg is the
// file's local name for an imported package (not a shadowing variable).
func isPkgSel(expr ast.Expr, pkgName, name string) bool {
	if pkgName == "" {
		return false
	}
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == pkgName && id.Obj == nil
}

// directives holds a file's dwrlint allow annotations.
type directives struct {
	fileAllow map[string]string         // rule -> justification
	lineAllow map[int]map[string]string // line -> rule -> justification
}

const (
	allowPrefix     = "//dwrlint:allow"
	fileAllowPrefix = "//dwrlint:file-allow"
)

// parseDirectives scans every comment in the file. A line directive
// covers its own source line and the line immediately below it, so both
// trailing comments and a directive line above the flagged statement
// work.
func parseDirectives(fset *token.FileSet, f *ast.File) directives {
	d := directives{
		fileAllow: map[string]string{},
		lineAllow: map[int]map[string]string{},
	}
	record := func(line int, rule, why string) {
		if d.lineAllow[line] == nil {
			d.lineAllow[line] = map[string]string{}
		}
		d.lineAllow[line][rule] = why
	}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := c.Text
			switch {
			case strings.HasPrefix(text, fileAllowPrefix):
				rule, why := splitDirective(text[len(fileAllowPrefix):])
				if rule != "" {
					d.fileAllow[rule] = why
				}
			case strings.HasPrefix(text, allowPrefix):
				rule, why := splitDirective(text[len(allowPrefix):])
				if rule != "" {
					record(fset.Position(c.Pos()).Line, rule, why)
				}
			}
		}
	}
	return d
}

// splitDirective parses " <rule> <justification...>".
func splitDirective(rest string) (rule, why string) {
	rest = strings.TrimSpace(rest)
	if rest == "" {
		return "", ""
	}
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		return rest[:i], strings.TrimSpace(rest[i:])
	}
	return rest, ""
}

// allowedDetail resolves a detail-qualified finding: the exact
// "rule:detail" directive wins, then the bare rule form (which covers
// every detail at the site).
func (d directives) allowedDetail(rule, detail string, line int) (string, bool) {
	if detail != "" {
		if why, ok := d.allowed(rule+":"+detail, line); ok {
			return why, true
		}
	}
	return d.allowed(rule, line)
}

// allowed reports whether a finding for rule at line is exempted, and
// with what justification.
func (d directives) allowed(rule string, line int) (string, bool) {
	if why, ok := d.fileAllow[rule]; ok {
		if why == "" {
			why = "(file-allow, no justification)"
		}
		return why, true
	}
	for _, l := range [2]int{line, line - 1} {
		if m, ok := d.lineAllow[l]; ok {
			if why, ok := m[rule]; ok {
				if why == "" {
					why = "(no justification)"
				}
				return why, true
			}
		}
	}
	return "", false
}

// analyzer inspects one file and reports findings.
type analyzer func(fc *fileCtx, cfg Config, report func(pos token.Pos, rule, msg string))

// analyzers is the per-file suite, in reporting order.
var analyzers = []analyzer{
	analyzeDeterminism,
	analyzeDeprecatedAPI,
	analyzeDeadline,
	analyzeSeedPlumbing,
}

// moduleReport is how a module analyzer emits one finding: the file it
// lives in, its position, and an optional detail (the exact field or
// construct) for per-field directive suppression.
type moduleReport func(mf *modFile, pos token.Pos, rule, detail, msg string)

// moduleAnalyzer inspects the type-checked module view built over the
// selected directories (plus everything they transitively import).
type moduleAnalyzer func(m *module, cfg Config, report moduleReport)

// moduleAnalyzers is the type-aware suite, in reporting order.
var moduleAnalyzers = []moduleAnalyzer{
	analyzeTaintModule,
	analyzeCacheKeyModule,
	analyzeStatsMergeModule,
	analyzeConcModule,
}

// LintFile runs every analyzer over one parsed file and returns all
// findings, with directive-exempted ones marked Allowed.
func lintFile(fc *fileCtx, cfg Config) []Finding {
	dirs := parseDirectives(fc.fset, fc.file)
	seen := map[string]bool{}
	var out []Finding
	for _, an := range analyzers {
		an(fc, cfg, func(pos token.Pos, rule, msg string) {
			p := fc.fset.Position(pos)
			key := fmt.Sprintf("%d:%d:%s", p.Line, p.Column, rule)
			if seen[key] {
				return
			}
			seen[key] = true
			f := Finding{File: fc.path, Line: p.Line, Col: p.Column, Rule: rule, Msg: msg}
			if why, ok := dirs.allowed(rule, p.Line); ok {
				f.Allowed = true
				f.Justification = why
			}
			out = append(out, f)
		})
	}
	return out
}

// LintPatterns lints the files selected by patterns, resolved relative
// to root. Three pattern forms are supported, mirroring the go tool:
//
//	dir/...   every package directory under dir (testdata, vendor, and
//	          dot-directories are skipped, as the go tool does)
//	dir       the .go files directly in dir (testdata dirs may be
//	          named explicitly this way)
//	file.go   a single file
//
// File paths in findings are reported relative to root where possible.
func LintPatterns(root string, patterns []string, cfg Config) ([]Finding, error) {
	var files []string
	for _, pat := range patterns {
		fs, err := expandPattern(root, pat)
		if err != nil {
			return nil, err
		}
		files = append(files, fs...)
	}
	sort.Strings(files)
	var out []Finding
	fset := token.NewFileSet()
	for i, path := range files {
		if i > 0 && files[i-1] == path {
			continue // pattern overlap
		}
		src, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		rel := path
		if r, err := filepath.Rel(root, path); err == nil && !strings.HasPrefix(r, "..") {
			rel = r
		}
		fc := &fileCtx{
			fset:   fset,
			file:   src,
			path:   filepath.ToSlash(rel),
			unit:   filepath.Base(filepath.Dir(path)),
			isTest: strings.HasSuffix(path, "_test.go"),
		}
		out = append(out, lintFile(fc, cfg)...)
	}
	out = append(out, lintModule(root, files, cfg)...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Detail < b.Detail
	})
	return out, nil
}

// lintModule runs the type-aware module analyzers over the selected
// files: their directories are parsed and type-checked (transitive
// module-internal imports load on demand), a call graph is built, and
// findings are filtered back down to the selected non-test files.
// Everything is best-effort — files that fail to type-check contribute
// partial facts, never an error.
func lintModule(root string, files []string, cfg Config) []Finding {
	mod := newModule(root)
	selected := map[string]bool{}
	dirSet := map[string]bool{}
	for _, path := range files {
		if strings.HasSuffix(path, "_test.go") {
			continue
		}
		abs, err := filepath.Abs(path)
		if err != nil {
			continue
		}
		selected[abs] = true
		dirSet[filepath.Dir(abs)] = true
	}
	if len(dirSet) == 0 {
		return nil
	}
	var dirs []string
	for d := range dirSet {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	for _, d := range dirs {
		mod.load(d)
	}
	mod.buildFacts()

	var out []Finding
	seen := map[string]bool{}
	report := func(mf *modFile, pos token.Pos, rule, detail, msg string) {
		if mf == nil || !selected[mf.abs] {
			return
		}
		p := mod.fset.Position(pos)
		key := fmt.Sprintf("%s:%d:%d:%s:%s", mf.abs, p.Line, p.Column, rule, detail)
		if seen[key] {
			return
		}
		seen[key] = true
		f := Finding{File: mod.relOf(mf.abs), Line: p.Line, Col: p.Column, Rule: rule, Detail: detail, Msg: msg}
		if why, ok := mf.dirs.allowedDetail(rule, detail, p.Line); ok {
			f.Allowed = true
			f.Justification = why
		}
		out = append(out, f)
	}
	for _, an := range moduleAnalyzers {
		an(mod, cfg, report)
	}
	return out
}

// expandPattern resolves one CLI pattern to .go file paths.
func expandPattern(root, pat string) ([]string, error) {
	pat = filepath.FromSlash(pat)
	join := func(p string) string {
		if filepath.IsAbs(p) {
			return p
		}
		return filepath.Join(root, p)
	}
	if strings.HasSuffix(pat, "...") {
		base := join(strings.TrimSuffix(strings.TrimSuffix(pat, "..."), string(filepath.Separator)))
		if base == "" {
			base = root
		}
		return walkGoFiles(base)
	}
	full := join(pat)
	info, err := os.Stat(full)
	if err != nil {
		return nil, err
	}
	if !info.IsDir() {
		return []string{full}, nil
	}
	return dirGoFiles(full)
}

// walkGoFiles collects .go files under base, skipping the directories
// the go tool skips (testdata, vendor, dot- and underscore-prefixed).
func walkGoFiles(base string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != base && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") {
			out = append(out, path)
		}
		return nil
	})
	return out, err
}

// dirGoFiles lists the .go files directly inside dir.
func dirGoFiles(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			out = append(out, filepath.Join(dir, e.Name()))
		}
	}
	return out, nil
}

// Violations filters findings to the ones not exempted by a directive.
func Violations(fs []Finding) []Finding {
	var out []Finding
	for _, f := range fs {
		if !f.Allowed {
			out = append(out, f)
		}
	}
	return out
}

// Fixlist filters findings to the directive-exempted sites, the
// auditable exemption surface.
func Fixlist(fs []Finding) []Finding {
	var out []Finding
	for _, f := range fs {
		if f.Allowed {
			out = append(out, f)
		}
	}
	return out
}
