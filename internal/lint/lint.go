// Package lint is the dwrlint static-analysis suite: a stdlib-only
// (go/parser, go/ast, go/token) pass over the module that mechanically
// enforces the repository's determinism, API-hygiene, and
// deadline-discipline invariants.
//
// The headline guarantees of this reproduction — byte-identical query
// results at any worker count, replayable fault scenarios, seeded load
// generation — rest on conventions: all randomness flows through
// internal/randx, deterministic packages never read the wall clock, new
// code configures engines with functional options rather than the
// deprecated setter shims, and serving paths propagate deadlines. One
// stray time.Now() or global math/rand call silently breaks the
// paper-shape experiments, so the conventions are machine-checked here
// rather than reviewed-for.
//
// Four analyzers emit findings under five rule ids:
//
//   - determinism: [wallclock] time.Now/Since/Sleep/... and
//     [globalrand] top-level math/rand calls in deterministic packages
//   - deprecated-api: [deprecated] calls to the qproc setter shims
//   - deadline-discipline: [deadline] QueryTopK where QueryTopKWithin
//     must be used so deadlines propagate
//   - seed-plumbing: [seed] *rand.Rand values not derived from
//     internal/randx (or an explicit seed in tests)
//
// Intentional exceptions are annotated in the source:
//
//	//dwrlint:allow <rule> <justification>       (this line or the next)
//	//dwrlint:file-allow <rule> <justification>  (whole file)
//
// Allowed sites are suppressed from normal output but remain auditable:
// the Fixlist (cmd/dwrlint -fixlist) prints every suppressed finding
// with its justification.
package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one rule violation (or, when Allowed, one audited
// exemption) at a source position.
type Finding struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	Rule string `json:"rule"`
	Msg  string `json:"msg"`

	// Allowed marks a finding suppressed by a //dwrlint:allow or
	// //dwrlint:file-allow directive; Justification is the directive's
	// trailing free text.
	Allowed       bool   `json:"allowed,omitempty"`
	Justification string `json:"justification,omitempty"`
}

// String renders the canonical "file:line: [rule] message" form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.File, f.Line, f.Rule, f.Msg)
}

// Config selects which packages each analyzer applies to.
type Config struct {
	// Deterministic is the set of package units (directory base names)
	// whose results must be a pure function of their seeds. The
	// determinism and seed-plumbing analyzers only fire inside these.
	Deterministic map[string]bool

	// DeadlineUnits is the set of units whose query call sites must
	// propagate deadlines (the serving paths).
	DeadlineUnits map[string]bool
}

// DefaultConfig returns the repository's invariant configuration.
func DefaultConfig() Config {
	det := map[string]bool{}
	for _, p := range []string{
		"simweb", "faultsim", "index", "qproc", "rank", "crawler",
		"queueing", "loadgen", "cache", "chash", "partition",
		"selection", "replication", "experiments", "mediator",
	} {
		det[p] = true
	}
	return Config{
		Deterministic: det,
		DeadlineUnits: map[string]bool{"server": true, "dwrserve": true},
	}
}

// fileCtx is one parsed file plus the lookups analyzers need.
type fileCtx struct {
	fset   *token.FileSet
	file   *ast.File
	path   string // as reported in findings
	unit   string // directory base name, e.g. "qproc"
	isTest bool
}

// importName returns the local identifier under which the file imports
// importPath ("" if not imported, or imported as _ or .).
func (fc *fileCtx) importName(importPath string) string {
	for _, imp := range fc.file.Imports {
		p := strings.Trim(imp.Path.Value, `"`)
		if p != importPath {
			continue
		}
		if imp.Name != nil {
			if imp.Name.Name == "_" || imp.Name.Name == "." {
				return ""
			}
			return imp.Name.Name
		}
		base := p
		if i := strings.LastIndex(p, "/"); i >= 0 {
			base = p[i+1:]
		}
		return base
	}
	return ""
}

// isPkgSel reports whether expr is a selector pkg.name where pkg is the
// file's local name for an imported package (not a shadowing variable).
func isPkgSel(expr ast.Expr, pkgName, name string) bool {
	if pkgName == "" {
		return false
	}
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == pkgName && id.Obj == nil
}

// directives holds a file's dwrlint allow annotations.
type directives struct {
	fileAllow map[string]string         // rule -> justification
	lineAllow map[int]map[string]string // line -> rule -> justification
}

const (
	allowPrefix     = "//dwrlint:allow"
	fileAllowPrefix = "//dwrlint:file-allow"
)

// parseDirectives scans every comment in the file. A line directive
// covers its own source line and the line immediately below it, so both
// trailing comments and a directive line above the flagged statement
// work.
func parseDirectives(fset *token.FileSet, f *ast.File) directives {
	d := directives{
		fileAllow: map[string]string{},
		lineAllow: map[int]map[string]string{},
	}
	record := func(line int, rule, why string) {
		if d.lineAllow[line] == nil {
			d.lineAllow[line] = map[string]string{}
		}
		d.lineAllow[line][rule] = why
	}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := c.Text
			switch {
			case strings.HasPrefix(text, fileAllowPrefix):
				rule, why := splitDirective(text[len(fileAllowPrefix):])
				if rule != "" {
					d.fileAllow[rule] = why
				}
			case strings.HasPrefix(text, allowPrefix):
				rule, why := splitDirective(text[len(allowPrefix):])
				if rule != "" {
					record(fset.Position(c.Pos()).Line, rule, why)
				}
			}
		}
	}
	return d
}

// splitDirective parses " <rule> <justification...>".
func splitDirective(rest string) (rule, why string) {
	rest = strings.TrimSpace(rest)
	if rest == "" {
		return "", ""
	}
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		return rest[:i], strings.TrimSpace(rest[i:])
	}
	return rest, ""
}

// allowed reports whether a finding for rule at line is exempted, and
// with what justification.
func (d directives) allowed(rule string, line int) (string, bool) {
	if why, ok := d.fileAllow[rule]; ok {
		if why == "" {
			why = "(file-allow, no justification)"
		}
		return why, true
	}
	for _, l := range [2]int{line, line - 1} {
		if m, ok := d.lineAllow[l]; ok {
			if why, ok := m[rule]; ok {
				if why == "" {
					why = "(no justification)"
				}
				return why, true
			}
		}
	}
	return "", false
}

// analyzer inspects one file and reports findings.
type analyzer func(fc *fileCtx, cfg Config, report func(pos token.Pos, rule, msg string))

// analyzers is the suite, in reporting order.
var analyzers = []analyzer{
	analyzeDeterminism,
	analyzeDeprecatedAPI,
	analyzeDeadline,
	analyzeSeedPlumbing,
}

// LintFile runs every analyzer over one parsed file and returns all
// findings, with directive-exempted ones marked Allowed.
func lintFile(fc *fileCtx, cfg Config) []Finding {
	dirs := parseDirectives(fc.fset, fc.file)
	seen := map[string]bool{}
	var out []Finding
	for _, an := range analyzers {
		an(fc, cfg, func(pos token.Pos, rule, msg string) {
			p := fc.fset.Position(pos)
			key := fmt.Sprintf("%d:%d:%s", p.Line, p.Column, rule)
			if seen[key] {
				return
			}
			seen[key] = true
			f := Finding{File: fc.path, Line: p.Line, Col: p.Column, Rule: rule, Msg: msg}
			if why, ok := dirs.allowed(rule, p.Line); ok {
				f.Allowed = true
				f.Justification = why
			}
			out = append(out, f)
		})
	}
	return out
}

// LintPatterns lints the files selected by patterns, resolved relative
// to root. Three pattern forms are supported, mirroring the go tool:
//
//	dir/...   every package directory under dir (testdata, vendor, and
//	          dot-directories are skipped, as the go tool does)
//	dir       the .go files directly in dir (testdata dirs may be
//	          named explicitly this way)
//	file.go   a single file
//
// File paths in findings are reported relative to root where possible.
func LintPatterns(root string, patterns []string, cfg Config) ([]Finding, error) {
	var files []string
	for _, pat := range patterns {
		fs, err := expandPattern(root, pat)
		if err != nil {
			return nil, err
		}
		files = append(files, fs...)
	}
	sort.Strings(files)
	var out []Finding
	fset := token.NewFileSet()
	for i, path := range files {
		if i > 0 && files[i-1] == path {
			continue // pattern overlap
		}
		src, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		rel := path
		if r, err := filepath.Rel(root, path); err == nil && !strings.HasPrefix(r, "..") {
			rel = r
		}
		fc := &fileCtx{
			fset:   fset,
			file:   src,
			path:   filepath.ToSlash(rel),
			unit:   filepath.Base(filepath.Dir(path)),
			isTest: strings.HasSuffix(path, "_test.go"),
		}
		out = append(out, lintFile(fc, cfg)...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Rule < b.Rule
	})
	return out, nil
}

// expandPattern resolves one CLI pattern to .go file paths.
func expandPattern(root, pat string) ([]string, error) {
	pat = filepath.FromSlash(pat)
	join := func(p string) string {
		if filepath.IsAbs(p) {
			return p
		}
		return filepath.Join(root, p)
	}
	if strings.HasSuffix(pat, "...") {
		base := join(strings.TrimSuffix(strings.TrimSuffix(pat, "..."), string(filepath.Separator)))
		if base == "" {
			base = root
		}
		return walkGoFiles(base)
	}
	full := join(pat)
	info, err := os.Stat(full)
	if err != nil {
		return nil, err
	}
	if !info.IsDir() {
		return []string{full}, nil
	}
	return dirGoFiles(full)
}

// walkGoFiles collects .go files under base, skipping the directories
// the go tool skips (testdata, vendor, dot- and underscore-prefixed).
func walkGoFiles(base string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != base && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") {
			out = append(out, path)
		}
		return nil
	})
	return out, err
}

// dirGoFiles lists the .go files directly inside dir.
func dirGoFiles(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			out = append(out, filepath.Join(dir, e.Name()))
		}
	}
	return out, nil
}

// Violations filters findings to the ones not exempted by a directive.
func Violations(fs []Finding) []Finding {
	var out []Finding
	for _, f := range fs {
		if !f.Allowed {
			out = append(out, f)
		}
	}
	return out
}

// Fixlist filters findings to the directive-exempted sites, the
// auditable exemption surface.
func Fixlist(fs []Finding) []Finding {
	var out []Finding
	for _, f := range fs {
		if f.Allowed {
			out = append(out, f)
		}
	}
	return out
}
