package lint

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// This file is the v2 analysis substrate: a lazily type-checked view of
// the module the linted files belong to, plus a static call graph over
// every function the view has loaded. It is stdlib-only — module-internal
// import paths are resolved straight from the already-parsed ASTs, and
// standard-library paths go through importer.Default() (compiled export
// data) with a source importer as fallback — so the linter needs neither
// go/packages nor a build step.
//
// Everything here is best-effort by design: fixture trees and
// mid-refactor code rarely type-check cleanly, and a lint run must
// degrade to "fewer facts, fewer findings" rather than erroring out. The
// type checker runs with an error collector, and analyzers treat missing
// type info as "unknown, stay silent".

// module is a typed, call-graph-annotated view of one Go module.
type module struct {
	fset     *token.FileSet
	lintRoot string // findings are reported relative to this
	modRoot  string // directory holding go.mod ("" if none found)
	modPath  string // module path from go.mod ("" if none found)

	pkgs   map[string]*modPackage // abs dir -> package view
	byFile map[string]*modFile    // abs file -> loaded view

	std     types.Importer // compiled stdlib export data
	src     types.Importer // source fallback
	stdMemo map[string]*types.Package

	funcs map[*types.Func]*funcFacts // call graph, built by buildFacts
}

// modPackage is one directory's non-test files, parsed and type-checked.
type modPackage struct {
	dir     string // absolute
	unit    string // directory base name, e.g. "qproc"
	files   []*modFile
	pkg     *types.Package
	info    *types.Info
	loading bool // cycle guard while type-checking imports
	err     error
}

// modFile is one parsed non-test file plus its allow directives.
type modFile struct {
	abs  string
	ast  *ast.File
	dirs directives
}

// callSite is one statically resolved call inside a function body.
type callSite struct {
	pos    token.Pos
	callee *types.Func
}

// sinkSite is one direct wall-clock / global-rand call inside a body.
type sinkSite struct {
	pos     token.Pos
	rule    string // "wallclock" or "globalrand"
	name    string // e.g. "time.Now"
	allowed bool   // suppressed by a //dwrlint:allow at the site
}

// funcFacts is the per-function call-graph node.
type funcFacts struct {
	obj   *types.Func
	decl  *ast.FuncDecl
	pkg   *modPackage
	file  *modFile
	calls []callSite
	sinks []sinkSite
}

// newModule builds the (empty) module view for files under lintRoot. The
// enclosing go.mod is found by walking upward; without one, only stdlib
// imports resolve and module-internal calls stay opaque.
func newModule(lintRoot string) *module {
	abs, err := filepath.Abs(lintRoot)
	if err != nil {
		abs = lintRoot
	}
	m := &module{
		fset:     token.NewFileSet(),
		lintRoot: abs,
		pkgs:     map[string]*modPackage{},
		byFile:   map[string]*modFile{},
		std:      importer.Default(),
		stdMemo:  map[string]*types.Package{},
	}
	m.src = importer.ForCompiler(m.fset, "source", nil)
	for dir := abs; ; {
		if data, err := os.ReadFile(filepath.Join(dir, "go.mod")); err == nil {
			m.modRoot = dir
			m.modPath = modulePath(string(data))
			break
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			break
		}
		dir = parent
	}
	return m
}

// modulePath extracts the module path from go.mod text.
func modulePath(gomod string) string {
	for _, line := range strings.Split(gomod, "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			rest = strings.TrimSpace(rest)
			return strings.Trim(rest, `"`)
		}
	}
	return ""
}

// load parses and type-checks the non-test files of one directory,
// memoized. Failures are recorded, not returned: a package that cannot
// be loaded simply contributes no facts.
func (m *module) load(dir string) *modPackage {
	if abs, err := filepath.Abs(dir); err == nil {
		dir = abs
	}
	if p, ok := m.pkgs[dir]; ok {
		return p
	}
	p := &modPackage{dir: dir, unit: filepath.Base(dir)}
	m.pkgs[dir] = p

	ents, err := os.ReadDir(dir)
	if err != nil {
		p.err = err
		return p
	}
	var names []string
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	var asts []*ast.File
	pkgName := ""
	for _, n := range names {
		f, err := parser.ParseFile(m.fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			p.err = err
			continue
		}
		// A directory can legitimately mix package names (fixtures, main
		// vs. tool files); keep the first-seen package, skip the rest.
		if pkgName == "" {
			pkgName = f.Name.Name
		} else if f.Name.Name != pkgName {
			continue
		}
		mf := &modFile{abs: filepath.Join(dir, n), ast: f}
		mf.dirs = parseDirectives(m.fset, f)
		asts = append(asts, f)
		p.files = append(p.files, mf)
		m.byFile[mf.abs] = mf
	}
	if len(asts) == 0 {
		return p
	}

	p.loading = true
	defer func() { p.loading = false }()
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{
		Importer:                 m,
		Error:                    func(error) {}, // best-effort: collect nothing, keep going
		FakeImportC:              true,
		DisableUnusedImportCheck: true,
	}
	p.pkg, _ = conf.Check(m.importPathOf(dir), m.fset, asts, info)
	p.info = info
	return p
}

// importPathOf maps an absolute directory to its import path within the
// module (best-effort; only used as the type-checked package's path).
func (m *module) importPathOf(dir string) string {
	if m.modRoot != "" {
		if rel, err := filepath.Rel(m.modRoot, dir); err == nil && !strings.HasPrefix(rel, "..") {
			if rel == "." {
				return m.modPath
			}
			return m.modPath + "/" + filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(dir)
}

// Import implements types.Importer: module-internal paths are resolved
// from parsed source, everything else from stdlib export data (with a
// source-importer fallback).
func (m *module) Import(path string) (*types.Package, error) {
	if m.modPath != "" && (path == m.modPath || strings.HasPrefix(path, m.modPath+"/")) {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, m.modPath), "/")
		dir := filepath.Join(m.modRoot, filepath.FromSlash(rel))
		p := m.load(dir)
		if p.loading && p.pkg == nil {
			return nil, &importError{path: path, reason: "import cycle"}
		}
		if p.pkg == nil {
			return nil, &importError{path: path, reason: "could not load package"}
		}
		return p.pkg, nil
	}
	if pkg, ok := m.stdMemo[path]; ok {
		if pkg == nil {
			return nil, &importError{path: path, reason: "unresolvable import"}
		}
		return pkg, nil
	}
	pkg, err := m.std.Import(path)
	if err != nil && m.src != nil {
		pkg, err = m.src.Import(path)
	}
	if err != nil {
		m.stdMemo[path] = nil
		return nil, err
	}
	m.stdMemo[path] = pkg
	return pkg, nil
}

type importError struct{ path, reason string }

func (e *importError) Error() string { return e.reason + ": " + e.path }

// relOf reports path relative to the lint root, matching the per-file
// pass's finding paths.
func (m *module) relOf(abs string) string {
	if rel, err := filepath.Rel(m.lintRoot, abs); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(abs)
}

// buildFacts walks every loaded package and records, per declared
// function, its statically resolvable calls and its direct
// wall-clock/global-rand sinks. Function literals are attributed to the
// enclosing declaration — a sink inside a closure taints the function
// that builds the closure, which is the conservative direction.
func (m *module) buildFacts() {
	m.funcs = map[*types.Func]*funcFacts{}
	for _, dir := range m.sortedDirs() {
		p := m.pkgs[dir]
		if p.info == nil {
			continue
		}
		for _, mf := range p.files {
			for _, decl := range mf.ast.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := p.info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				ff := &funcFacts{obj: obj, decl: fd, pkg: p, file: mf}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					callee := calleeOf(p.info, call)
					if callee == nil {
						return true
					}
					ff.calls = append(ff.calls, callSite{pos: call.Pos(), callee: callee})
					if rule, name, ok := sinkCall(callee); ok {
						line := m.fset.Position(call.Pos()).Line
						_, allowed := mf.dirs.allowed(rule, line)
						ff.sinks = append(ff.sinks, sinkSite{
							pos: call.Pos(), rule: rule, name: name, allowed: allowed,
						})
					}
					return true
				})
				m.funcs[obj] = ff
			}
		}
	}
}

// sortedDirs returns the loaded package directories in a fixed order so
// every walk over the module is deterministic.
func (m *module) sortedDirs() []string {
	dirs := make([]string, 0, len(m.pkgs))
	for d := range m.pkgs {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	return dirs
}

// calleeOf statically resolves a call expression's target function:
// package-level calls, method calls on concrete receivers, and
// pkg-qualified calls. Interface dispatch and function values resolve to
// nil (unknown), which analyzers treat as "no edge".
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
			return nil
		}
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f // pkg.Func
		}
	}
	return nil
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// sinkCall classifies a resolved callee as a determinism sink: a
// package-level function of time that reads or blocks on the real clock,
// or a package-level math/rand function drawing from the shared global
// source. Methods (e.g. a seeded *rand.Rand's Intn) are not sinks.
func sinkCall(f *types.Func) (rule, name string, ok bool) {
	pkg := f.Pkg()
	if pkg == nil {
		return "", "", false
	}
	if sig, _ := f.Type().(*types.Signature); sig == nil || sig.Recv() != nil {
		return "", "", false
	}
	switch pkg.Path() {
	case "time":
		if wallclockFuncs[f.Name()] {
			return "wallclock", "time." + f.Name(), true
		}
	case "math/rand":
		if globalRandFuncs[f.Name()] {
			return "globalrand", "rand." + f.Name(), true
		}
	}
	return "", "", false
}

// fileOf finds the loaded modFile containing pos.
func (m *module) fileOf(pos token.Pos) *modFile {
	return m.byFile[m.fset.Position(pos).Filename]
}
