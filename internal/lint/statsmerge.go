package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// The stats-merge completeness analyzer ([statsmerge]) guards the
// scatter-gather accounting invariant: when an aggregation folds
// per-partition (or per-site) counter structs into a total, every
// countable field of the source struct must be consumed — a counter
// written on the partition path but dropped at the gather silently
// under-reports work forever (the PostingBytesDecoded regression class).
//
// Detection is structural, not name-based, so it covers QueryResult,
// rank.EvalStats, the metrics counter structs, and any counter struct a
// future PR adds:
//
//   - A FOLD is a `dst.Field += src.Field` statement (the RHS may be a
//     sum; each struct-field operand counts). The LHS must itself be a
//     field — a merge function builds an aggregate OBJECT. Sampling
//     loops that project a few counters into scalar locals
//     (`waves += qr.Waves`) are reporting, not merging, and are out of
//     scope. Folds are grouped by the source struct's named type and
//     the source expression it is read off (e.g. all `out.? += es.X` in
//     one function form the group (EvalStats, "es")).
//   - A group with >= 2 distinct folded fields is an AGGREGATION SITE:
//     the function is clearly merging that struct, so every countable
//     field of the struct must be read off the same source expression
//     somewhere in the function — folded, max-folded, or inspected.
//   - Countable fields are basic numeric fields, plus struct-typed
//     fields whose type has a Merge method (a counter bundle that knows
//     how to fold itself must be given the chance to).
//
// Findings anchor at the group's first fold statement and carry the
// missing field as detail, so intentional drops are suppressed per field:
// //dwrlint:allow statsmerge:FieldName <why>.

// foldGroup accumulates one (function, source struct, source root)'s
// folds and reads.
type foldGroup struct {
	named  *types.Named
	root   string // types.ExprString of the source expression
	pos    token.Pos
	folded map[string]bool
}

func analyzeStatsMergeModule(m *module, cfg Config, report moduleReport) {
	for _, dir := range m.sortedDirs() {
		p := m.pkgs[dir]
		if p.info == nil {
			continue
		}
		for _, mf := range p.files {
			for _, decl := range mf.ast.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				checkMergeFunc(p, mf, fd, report)
			}
		}
	}
}

func checkMergeFunc(p *modPackage, mf *modFile, fd *ast.FuncDecl, report moduleReport) {
	info := p.info
	groups := map[string]*foldGroup{}

	// Pass 1: find folds.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.ADD_ASSIGN || len(as.Rhs) != 1 || len(as.Lhs) != 1 {
			return true
		}
		if _, ok := unparen(as.Lhs[0]).(*ast.SelectorExpr); !ok {
			return true // accumulating into a scalar local: a projection, not a merge
		}
		for _, src := range foldSources(as.Rhs[0]) {
			named, root, field, ok := fieldRead(info, src)
			if !ok {
				continue
			}
			key := groupKey(named, root)
			g := groups[key]
			if g == nil {
				g = &foldGroup{named: named, root: root, pos: as.Pos(), folded: map[string]bool{}}
				groups[key] = g
			}
			g.folded[field] = true
		}
		return true
	})

	// Any group folding >= 2 distinct fields marks an aggregation site.
	var active []*foldGroup
	for _, g := range groups {
		if len(g.folded) >= 2 {
			active = append(active, g)
		}
	}
	if len(active) == 0 {
		return
	}
	sort.Slice(active, func(i, j int) bool { return active[i].pos < active[j].pos })

	// Pass 2: every field read off every source root, fold or not.
	reads := map[string]map[string]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		named, root, field, ok := fieldRead(info, sel)
		if !ok {
			return true
		}
		key := groupKey(named, root)
		if reads[key] == nil {
			reads[key] = map[string]bool{}
		}
		reads[key][field] = true
		return true
	})

	for _, g := range active {
		st, ok := g.named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		seen := reads[groupKey(g.named, g.root)]
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if !countableField(f) || seen[f.Name()] {
				continue
			}
			report(mf, g.pos, "statsmerge", f.Name(), fmt.Sprintf(
				"counter %s.%s is dropped by the aggregation in %s: %d sibling fields of %q are folded here but this one is never read, so gathered totals silently under-report; fold it or annotate //dwrlint:allow statsmerge:%s <why>",
				g.named.Obj().Name(), f.Name(), funcLabel(fd), len(g.folded), g.root, f.Name()))
		}
	}
}

// foldSources collects the struct-field operands of a += right-hand
// side: the selector itself, or the selector operands of a top-level
// sum. Operands behind calls, indexing, or other operators are ignored —
// those are derived values, not direct counter folds.
func foldSources(rhs ast.Expr) []*ast.SelectorExpr {
	switch e := unparen(rhs).(type) {
	case *ast.SelectorExpr:
		return []*ast.SelectorExpr{e}
	case *ast.BinaryExpr:
		if e.Op == token.ADD {
			return append(foldSources(e.X), foldSources(e.Y)...)
		}
	}
	return nil
}

// fieldRead resolves sel as a field read off a named-struct base and
// returns the base type, the base expression's canonical string (the
// group root), and the field name.
func fieldRead(info *types.Info, sel *ast.SelectorExpr) (*types.Named, string, string, bool) {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil, "", "", false
	}
	t := info.TypeOf(sel.X)
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil, "", "", false
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return nil, "", "", false
	}
	return named, types.ExprString(sel.X), sel.Sel.Name, true
}

func groupKey(named *types.Named, root string) string {
	return named.Obj().Id() + "|" + root
}

// countableField reports whether a struct field is a counter the merge
// must account for: basic numeric fields, and struct fields whose type
// carries a Merge method. Pointers, slices, maps, bools, strings, and
// interfaces are carried by reference or semantics, not summed.
func countableField(f *types.Var) bool {
	switch t := f.Type().Underlying().(type) {
	case *types.Basic:
		return t.Info()&types.IsNumeric != 0
	case *types.Struct:
		named, ok := f.Type().(*types.Named)
		if !ok {
			return false
		}
		obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(named), true, named.Obj().Pkg(), "Merge")
		_, isFunc := obj.(*types.Func)
		return isFunc
	}
	return false
}

// funcLabel names a function for messages: Func or (Recv).Method.
func funcLabel(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return "(" + id.Name + ")." + fd.Name.Name
	}
	return fd.Name.Name
}
