package lint

import (
	"fmt"
	"go/ast"
	"go/token"
)

// The deprecated-api analyzer ([deprecated]) stops the removed qproc
// setter shims from coming back. Engines are configured with functional
// options at construction (WithWorkers, WithResultCache,
// WithPostingsCache, WithFaultPolicy, WithInjector; ambient defaults
// via SetDefaultOptions); the setter surface was deleted once all call
// sites migrated. Matching is by method/function name, which is exact
// for this module: no other package declares these names.

// deprecatedSetters maps each removed shim to the option surface that
// replaced it. SetDown is excluded: it is retained (not deprecated) for
// static-topology experiments.
var deprecatedSetters = map[string]string{
	"SetWorkers":                   "WithWorkers(n) at construction",
	"SetResultCache":               "WithResultCache / WithResultCacheInstance at construction",
	"SetPostingsCache":             "WithPostingsCache(n) at construction",
	"SetDefaultWorkers":            "SetDefaultOptions(WithWorkers(n))",
	"SetDefaultResultCache":        "SetDefaultOptions(WithResultCache(cfg))",
	"SetDefaultPostingsCacheBytes": "SetDefaultOptions(WithPostingsCache(n))",
}

func analyzeDeprecatedAPI(fc *fileCtx, cfg Config, report func(pos token.Pos, rule, msg string)) {
	ast.Inspect(fc.file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var name string
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			name = fun.Sel.Name
		case *ast.Ident:
			// Same-package call (only resolvable for names declared in
			// another file, where the parser leaves Obj nil).
			if fun.Obj == nil {
				name = fun.Name
			}
		}
		if repl, ok := deprecatedSetters[name]; ok {
			report(call.Pos(), "deprecated", fmt.Sprintf(
				"deprecated qproc setter shim %s: use %s", name, repl))
		}
		return true
	})
}
