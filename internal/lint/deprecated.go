package lint

import (
	"fmt"
	"go/ast"
	"go/token"
)

// The deprecated-api analyzer ([deprecated]) stops the deprecated qproc
// setter shims from re-spreading. Engines are configured with
// functional options at construction (WithWorkers, WithResultCache,
// WithPostingsCache, WithFaultPolicy, WithInjector; ambient defaults
// via SetDefaultOptions); the setters survive only so old call sites
// keep compiling. Matching is by method/function name, which is exact
// for this module: no other package declares these names.
//
// qproc/shim_parity_test.go — the test that pins shim behavior to the
// options it delegates to — is exempt wholesale; other intentional shim
// exercises (e.g. a regression test for the shim itself) carry
// //dwrlint:allow deprecated annotations.

// deprecatedSetters maps each shim to the option surface that replaces
// it. SetDown is excluded: it is deprecated for fault injection but
// explicitly retained for static-topology experiments.
var deprecatedSetters = map[string]string{
	"SetWorkers":                   "WithWorkers(n) at construction",
	"SetResultCache":               "WithResultCache / WithResultCacheInstance at construction",
	"SetPostingsCache":             "WithPostingsCache(n) at construction",
	"SetDefaultWorkers":            "SetDefaultOptions(WithWorkers(n))",
	"SetDefaultResultCache":        "SetDefaultOptions(WithResultCache(cfg))",
	"SetDefaultPostingsCacheBytes": "SetDefaultOptions(WithPostingsCache(n))",
}

func analyzeDeprecatedAPI(fc *fileCtx, cfg Config, report func(pos token.Pos, rule, msg string)) {
	if fileBase(fc.path) == "shim_parity_test.go" {
		return
	}
	ast.Inspect(fc.file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var name string
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			name = fun.Sel.Name
		case *ast.Ident:
			// Same-package call (only resolvable for names declared in
			// another file, where the parser leaves Obj nil).
			if fun.Obj == nil {
				name = fun.Name
			}
		}
		if repl, ok := deprecatedSetters[name]; ok {
			report(call.Pos(), "deprecated", fmt.Sprintf(
				"deprecated qproc setter shim %s: use %s", name, repl))
		}
		return true
	})
}

// fileBase returns the last path element of a slash path.
func fileBase(p string) string {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] == '/' {
			return p[i+1:]
		}
	}
	return p
}
