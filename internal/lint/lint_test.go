package lint

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
)

// expectation is one finding a fixture announces with a trailing
// "// want <rule> [<rule>...]" marker.
type expectation struct {
	File string
	Line int
	Rule string
}

// readExpectations scans every fixture file in dir for want markers.
func readExpectations(t *testing.T, dir string) []expectation {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []expectation
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			text := sc.Text()
			i := strings.Index(text, "// want ")
			if i < 0 {
				continue
			}
			for _, rule := range strings.Fields(text[i+len("// want "):]) {
				out = append(out, expectation{File: filepath.ToSlash(path), Line: line, Rule: rule})
			}
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	sortExpectations(out)
	return out
}

func sortExpectations(es []expectation) {
	sort.Slice(es, func(i, j int) bool {
		a, b := es[i], es[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Rule < b.Rule
	})
}

// TestAnalyzersOnFixtures is the table-driven acceptance test: each
// fixture directory exercises one analyzer (plus overlaps), and the
// violations must match the want markers exactly — no misses, no false
// positives.
func TestAnalyzersOnFixtures(t *testing.T) {
	cases := []struct {
		name string
		dir  string
	}{
		{"determinism", "testdata/simweb"},
		{"determinism-evaluator", "testdata/rank"},
		{"determinism-waves", "testdata/qproc"},
		{"determinism-mediator", "testdata/mediator"},
		{"determinism-file-allow", "testdata/experiments"},
		{"deprecated-api", "testdata/qprocuse"},
		{"deadline-server", "testdata/server"},
		{"deadline-dwrserve", "testdata/dwrserve"},
		{"seed-plumbing", "testdata/index"},
		{"taint", "testdata/taint/crawler"},
		{"cachekey", "testdata/cachekey"},
		{"statsmerge", "testdata/statsmerge"},
		{"conc-discipline", "testdata/concfix/queueing"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			findings, err := LintPatterns(".", []string{tc.dir}, DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			var got []expectation
			for _, f := range Violations(findings) {
				got = append(got, expectation{File: f.File, Line: f.Line, Rule: f.Rule})
			}
			sortExpectations(got)
			want := readExpectations(t, tc.dir)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("findings diverge from fixture markers\ngot:  %v\nwant: %v", got, want)
			}
		})
	}
}

// TestFindingsAreNonEmptyOnFixtures pins the CLI contract that the
// fixture tree as a whole trips every rule id at least once.
func TestFindingsAreNonEmptyOnFixtures(t *testing.T) {
	findings, err := LintPatterns(".", []string{
		"testdata/simweb", "testdata/experiments", "testdata/qprocuse",
		"testdata/server", "testdata/dwrserve", "testdata/index",
		"testdata/rank", "testdata/qproc", "testdata/mediator",
		"testdata/taint/crawler", "testdata/cachekey",
		"testdata/statsmerge", "testdata/concfix/queueing",
	}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rules := map[string]int{}
	for _, f := range Violations(findings) {
		rules[f.Rule]++
	}
	for _, rule := range []string{
		"wallclock", "globalrand", "deprecated", "deadline", "seed",
		"taint", "cachekey", "statsmerge", "conc",
	} {
		if rules[rule] == 0 {
			t.Errorf("fixtures never tripped rule %q (got %v)", rule, rules)
		}
	}
}

// TestFixlist audits the exemption surface of the fixtures: every
// //dwrlint:allow'd site appears with its justification, and nothing
// allowed leaks into the violation list.
func TestFixlist(t *testing.T) {
	findings, err := LintPatterns(".", []string{
		"testdata/simweb", "testdata/experiments", "testdata/qprocuse", "testdata/server",
	}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	allowed := Fixlist(findings)
	byFile := map[string]int{}
	for _, f := range allowed {
		if f.Justification == "" {
			t.Errorf("%s:%d allowed without justification text", f.File, f.Line)
		}
		byFile[f.File]++
	}
	want := map[string]int{
		"testdata/simweb/allowed.go":        2, // trailing + preceding-line allow
		"testdata/experiments/fileallow.go": 3, // file-allow covers Now, Since, Now
		"testdata/qprocuse/deprecated.go":   1,
		"testdata/server/frontend.go":       1,
	}
	for file, n := range want {
		if byFile[file] != n {
			t.Errorf("%s: %d allowed sites, want %d (all: %v)", file, byFile[file], n, allowed)
		}
	}
	var justifications []string
	for _, f := range allowed {
		justifications = append(justifications, f.Justification)
	}
	if !contains(justifications, "reporting-only timestamp") {
		t.Errorf("trailing-allow justification lost: %v", justifications)
	}
}

func contains(ss []string, s string) bool {
	for _, v := range ss {
		if v == s {
			return true
		}
	}
	return false
}

// TestRepoIsClean lints the whole module with the real configuration:
// the tree must have zero non-exempted findings. This is the in-process
// twin of the CI `go run ./cmd/dwrlint ./...` gate, and it is what the
// satellite "fix every true positive" work is pinned by.
func TestRepoIsClean(t *testing.T) {
	findings, err := LintPatterns("../..", []string{"./..."}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range Violations(findings) {
		t.Errorf("%s", f)
	}
	// The exemption surface must stay small and justified: every entry
	// carries text, and wallclock exemptions exist (build timing).
	fix := Fixlist(findings)
	if len(fix) == 0 {
		t.Error("expected a nonzero audited exemption surface (wall-clock timing sites)")
	}
	for _, f := range fix {
		if f.Justification == "" || strings.HasPrefix(f.Justification, "(") {
			t.Errorf("%s:%d: [%s] exemption without a written justification", f.File, f.Line, f.Rule)
		}
	}
}

// writeTempModule materializes a throwaway module for mutation tests
// and lints it whole, returning the violations.
func lintTempModule(t *testing.T, files map[string]string) []Finding {
	t.Helper()
	root := t.TempDir()
	files["go.mod"] = "module tmpmod\n\ngo 1.22\n"
	for rel, src := range files {
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	findings, err := LintPatterns(root, []string{"./..."}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return Violations(findings)
}

// cacheKeySrc mirrors the shape of the real DocCacheKey: one pr=/ts=
// component per line so a mutation can delete exactly one.
const cacheKeySrc = `package qproc

import "fmt"

type DocQueryOptions struct {
	K          int
	Pruning    int
	Threshold  int
	DeadlineMs float64
}

func DocCacheKey(terms string, opt DocQueryOptions) string {
	key := fmt.Sprintf("%s|k=%d", terms, opt.K)
	key += fmt.Sprintf("|pr=%d", opt.Pruning)
	key += fmt.Sprintf("|ts=%d", opt.Threshold)
	return key
}
`

// TestMutationCacheKey is the acceptance check for the cachekey rule:
// the mirrored DocCacheKey is clean as written, and deleting any single
// pr=/ts= component line makes the linter fail with that exact field.
func TestMutationCacheKey(t *testing.T) {
	if got := lintTempModule(t, map[string]string{"qproc/key.go": cacheKeySrc}); len(got) != 0 {
		t.Fatalf("unmutated cache key flagged: %v", got)
	}
	for _, mut := range []struct{ line, field string }{
		{"\tkey += fmt.Sprintf(\"|pr=%d\", opt.Pruning)\n", "Pruning"},
		{"\tkey += fmt.Sprintf(\"|ts=%d\", opt.Threshold)\n", "Threshold"},
	} {
		if !strings.Contains(cacheKeySrc, mut.line) {
			t.Fatalf("mutation line drifted from source: %q", mut.line)
		}
		src := strings.Replace(cacheKeySrc, mut.line, "", 1)
		got := lintTempModule(t, map[string]string{"qproc/key.go": src})
		found := false
		for _, f := range got {
			if f.Rule == "cachekey" && f.Detail == mut.field {
				found = true
			}
		}
		if !found {
			t.Errorf("deleting the %s component produced no cachekey finding (got %v)", mut.field, got)
		}
	}
}

// statsMergeSrc mirrors the multi-site EngineStats gather: an aggregate
// object folding every counter of the per-site struct.
const statsMergeSrc = `package qproc

type evalStats struct {
	Decoded int
	Lists   int
	Bytes   int64
}

type totals struct {
	Decoded int
	Lists   int
	Bytes   int64
}

func (t *totals) fold(parts []evalStats) {
	for _, es := range parts {
		t.Decoded += es.Decoded
		t.Lists += es.Lists
		t.Bytes += es.Bytes
	}
}
`

// TestMutationStatsMerge is the acceptance check for the statsmerge
// rule: the complete fold is clean, and deleting any single counter
// fold makes the linter fail naming the dropped field.
func TestMutationStatsMerge(t *testing.T) {
	if got := lintTempModule(t, map[string]string{"qproc/merge.go": statsMergeSrc}); len(got) != 0 {
		t.Fatalf("unmutated merge flagged: %v", got)
	}
	for _, mut := range []struct{ line, field string }{
		{"\t\tt.Decoded += es.Decoded\n", "Decoded"},
		{"\t\tt.Lists += es.Lists\n", "Lists"},
		{"\t\tt.Bytes += es.Bytes\n", "Bytes"},
	} {
		if !strings.Contains(statsMergeSrc, mut.line) {
			t.Fatalf("mutation line drifted from source: %q", mut.line)
		}
		src := strings.Replace(statsMergeSrc, mut.line, "", 1)
		got := lintTempModule(t, map[string]string{"qproc/merge.go": src})
		found := false
		for _, f := range got {
			if f.Rule == "statsmerge" && f.Detail == mut.field {
				found = true
			}
		}
		if !found {
			t.Errorf("deleting the %s fold produced no statsmerge finding (got %v)", mut.field, got)
		}
	}
}

// TestDirectiveParsing covers the directive micro-syntax.
func TestDirectiveParsing(t *testing.T) {
	cases := []struct {
		in        string
		rule, why string
	}{
		{"wallclock timing only", "wallclock", "timing only"},
		{"  seed  ", "seed", ""},
		{"deadline", "deadline", ""},
		{"", "", ""},
	}
	for _, tc := range cases {
		rule, why := splitDirective(tc.in)
		if rule != tc.rule || why != tc.why {
			t.Errorf("splitDirective(%q) = (%q, %q), want (%q, %q)", tc.in, rule, why, tc.rule, tc.why)
		}
	}
}

// TestFindingJSON pins the machine-readable shape -json emits.
func TestFindingJSON(t *testing.T) {
	f := Finding{File: "a/b.go", Line: 3, Col: 9, Rule: "wallclock", Msg: "m"}
	b, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	got := string(b)
	want := `{"file":"a/b.go","line":3,"col":9,"rule":"wallclock","msg":"m"}`
	if got != want {
		t.Errorf("JSON shape drifted:\ngot  %s\nwant %s", got, want)
	}
	var back Finding
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != f {
		t.Errorf("round-trip diverged: %+v", back)
	}
}

// TestPatternForms covers the three CLI pattern shapes against the
// fixture tree.
func TestPatternForms(t *testing.T) {
	// Recursive pattern from the package root skips testdata entirely.
	findings, err := LintPatterns(".", []string{"./..."}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		if strings.Contains(f.File, "testdata") {
			t.Fatalf("./... descended into testdata: %s", f)
		}
	}
	// A single explicit file lints just that file.
	single, err := LintPatterns(".", []string{"testdata/dwrserve/main.go"}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if n := len(Violations(single)); n != 1 {
		t.Fatalf("single-file pattern found %d violations, want 1: %v", n, single)
	}
	// Recursive pattern under testdata works when asked for explicitly.
	rec, err := LintPatterns(".", []string{"testdata/server/..."}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if n := len(Violations(rec)); n != 1 {
		t.Fatalf("testdata/server/... found %d violations, want 1: %v", n, rec)
	}
}
