package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// The cache-key completeness analyzer ([cachekey]) machine-checks the
// pr=/ts=/sel= rule the result caches depend on: a cache-key function
// must encode every result-affecting option, and must NOT encode budget
// options that leave within-budget answers identical.
//
// A cache-key function is any function whose name ends in "CacheKey"
// (DocCacheKey, FederatedCacheKey, liveMediatedCacheKey, ...). Two
// obligations are checked from its type information:
//
//   - For a parameter whose named type ends in "QueryOptions": every
//     field must be read somewhere in the body — an option the key never
//     looks at means differently-optioned evaluations collide in the
//     cache — EXCEPT fields whose name contains "Deadline" or "Budget",
//     which must NOT be read: a deadline changes when an answer arrives,
//     never what it contains, so keying on it only fragments the cache.
//     If the whole options value escapes (passed to another function,
//     stringified), every field counts as read — including the forbidden
//     ones, which are then reported.
//   - Every other named parameter must be used in the body: an ignored
//     parameter is a key component the caller believes is encoded.
//
// Per-field suppression uses the detail-qualified directive form,
// //dwrlint:allow cachekey:FieldName <why>.

const optionsSuffix = "QueryOptions"

func analyzeCacheKeyModule(m *module, cfg Config, report moduleReport) {
	for _, dir := range m.sortedDirs() {
		p := m.pkgs[dir]
		if p.info == nil {
			continue
		}
		for _, mf := range p.files {
			for _, decl := range mf.ast.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !strings.HasSuffix(fd.Name.Name, "CacheKey") {
					continue
				}
				checkCacheKeyFunc(p, mf, fd, report)
			}
		}
	}
}

func checkCacheKeyFunc(p *modPackage, mf *modFile, fd *ast.FuncDecl, report moduleReport) {
	info := p.info
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if name.Name == "_" {
				continue
			}
			obj, _ := info.Defs[name].(*types.Var)
			if obj == nil {
				continue
			}
			if optType := optionsStructOf(obj.Type()); optType != nil {
				checkOptionsParam(mf, fd, info, obj, optType, report)
			} else if !paramUsed(fd.Body, info, obj) {
				report(mf, name.Pos(), "cachekey", name.Name, fmt.Sprintf(
					"cache-key function %s never uses parameter %q: callers believe it is part of the key; encode it or drop the parameter",
					fd.Name.Name, name.Name))
			}
		}
	}
}

// optionsStructOf returns the named struct type of an options parameter
// (*FooQueryOptions or FooQueryOptions), or nil.
func optionsStructOf(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || !strings.HasSuffix(named.Obj().Name(), optionsSuffix) {
		return nil
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return nil
	}
	return named
}

func checkOptionsParam(mf *modFile, fd *ast.FuncDecl, info *types.Info, param *types.Var, named *types.Named, report moduleReport) {
	st := named.Underlying().(*types.Struct)

	// Collect field reads off any expression of the options type, and
	// whether the parameter escapes whole (all-fields-read, conservatively).
	read := map[string]ast.Expr{} // field name -> the selector that read it
	selectorBases := map[*ast.Ident]bool{}
	escapes := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s, ok := info.Selections[sel]
		if !ok || s.Kind() != types.FieldVal {
			return true
		}
		if base := optionsStructOf(info.TypeOf(sel.X)); base == nil || base.Obj() != named.Obj() {
			return true
		}
		if _, seen := read[sel.Sel.Name]; !seen {
			read[sel.Sel.Name] = sel
		}
		if id, ok := unparen(sel.X).(*ast.Ident); ok {
			selectorBases[id] = true
		}
		return true
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || info.Uses[id] != param {
			return true
		}
		if !selectorBases[id] {
			escapes = true // the whole value flows somewhere we can't see into
		}
		return true
	})

	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		forbidden := strings.Contains(f.Name(), "Deadline") || strings.Contains(f.Name(), "Budget")
		sel, wasRead := read[f.Name()]
		switch {
		case forbidden && (wasRead || escapes):
			pos := fd.Name.Pos()
			if wasRead {
				pos = sel.Pos()
			}
			report(mf, pos, "cachekey", f.Name(), fmt.Sprintf(
				"budget field %s.%s must not reach the cache key built by %s: a deadline changes when an answer arrives, not what it contains, so keying on it fragments the cache",
				named.Obj().Name(), f.Name(), fd.Name.Name))
		case !forbidden && !wasRead && !escapes:
			report(mf, fd.Name.Pos(), "cachekey", f.Name(), fmt.Sprintf(
				"result-affecting field %s.%s is not encoded by %s: differently-optioned evaluations will collide in the cache (the pr=/ts=/sel= rule); encode it or annotate //dwrlint:allow cachekey:%s <why>",
				named.Obj().Name(), f.Name(), fd.Name.Name, f.Name()))
		}
	}
}

// paramUsed reports whether body references the parameter at all.
func paramUsed(body *ast.BlockStmt, info *types.Info, param *types.Var) bool {
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if used {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == param {
			used = true
		}
		return true
	})
	return used
}
