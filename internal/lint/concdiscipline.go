package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// The conc-discipline analyzer ([conc]) keeps hand-rolled concurrency
// out of the deterministic packages. Byte-identical answers at any
// worker count depend on every fan-out gathering its results in a fixed
// order; internal/conc (Do, Pipeline, Pool) packages exactly that
// contract, while a bare `go` statement with ad-hoc channel plumbing
// reintroduces scheduler-ordered gathers one refactor at a time.
//
// Three shapes are flagged in deterministic packages:
//
//   - a bare `go` statement (detail "go"),
//   - a raw channel allocation, make(chan ...) (detail "chan"),
//   - a select statement (detail "select") — select is scheduler-
//     ordered by definition, which is precisely what a deterministic
//     package must not observe.
//
// internal/conc itself is not in the deterministic set, so the
// primitives' own implementation is exempt by construction. Suppression:
// //dwrlint:allow conc <why> (or conc:go / conc:chan / conc:select).

func analyzeConcModule(m *module, cfg Config, report moduleReport) {
	for _, dir := range m.sortedDirs() {
		p := m.pkgs[dir]
		if p.info == nil || !cfg.Deterministic[p.unit] {
			continue
		}
		for _, mf := range p.files {
			ast.Inspect(mf.ast, func(n ast.Node) bool {
				switch stmt := n.(type) {
				case *ast.GoStmt:
					report(mf, stmt.Pos(), "conc", "go", fmt.Sprintf(
						"bare go statement in deterministic package %s: fan out through internal/conc (Do for bounded scatter-gather, Pipeline for staged flows) so gathers stay ordered at any width",
						p.unit))
				case *ast.SelectStmt:
					report(mf, stmt.Pos(), "conc", "select", fmt.Sprintf(
						"select statement in deterministic package %s: select wakes in scheduler order, which a replayable package must not observe; restructure around internal/conc's ordered gathers",
						p.unit))
				case *ast.CallExpr:
					if isMakeChan(p.info, stmt) {
						report(mf, stmt.Pos(), "conc", "chan", fmt.Sprintf(
							"raw channel construction in deterministic package %s: route fan-in through internal/conc instead of hand-rolled channel plumbing",
							p.unit))
					}
				}
				return true
			})
		}
	}
}

// isMakeChan reports whether call is make(chan ...), resolved via the
// type checker so a local function named make is not confused with the
// builtin.
func isMakeChan(info *types.Info, call *ast.CallExpr) bool {
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "make" || len(call.Args) == 0 {
		return false
	}
	if _, ok := info.Uses[id].(*types.Builtin); !ok {
		return false
	}
	_, isChan := call.Args[0].(*ast.ChanType)
	return isChan
}
