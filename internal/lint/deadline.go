package lint

import (
	"go/ast"
	"go/token"
)

// The deadline-discipline analyzer ([deadline]) covers the serving
// paths (internal/server, cmd/dwrserve): a front-end that calls
// QueryTopK instead of QueryTopKWithin silently discards the request's
// remaining budget, so partition retries, hedges, and pipeline
// truncation no longer see the deadline — exactly the failure mode the
// deadline-propagation work exists to prevent.
//
// Test files are skipped: stub engines there implement and delegate
// QueryTopK as part of exercising the non-deadline interface. The
// guarded production fallbacks (an engine that does not implement
// qproc.DeadlineQuerier has no budget to propagate) carry
// //dwrlint:allow deadline annotations.
func analyzeDeadline(fc *fileCtx, cfg Config, report func(pos token.Pos, rule, msg string)) {
	if !cfg.DeadlineUnits[fc.unit] || fc.isTest {
		return
	}
	ast.Inspect(fc.file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "QueryTopK" {
			report(call.Pos(), "deadline",
				"QueryTopK drops the request deadline on a serving path: use QueryTopKWithin(terms, k, remainingMs) so the budget propagates")
		}
		return true
	})
}
