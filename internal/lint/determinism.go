package lint

import (
	"fmt"
	"go/ast"
	"go/token"
)

// The determinism analyzer guards the packages whose outputs must be a
// pure function of their seeds. Two rule ids:
//
//   - [wallclock]: any reference to a wall-clock or real-sleep function
//     of package time. Deterministic packages express time as virtual
//     ticks (query ticks, simulated milliseconds); a single time.Now()
//     makes a replay diverge between runs and machines.
//   - [globalrand]: any call of a top-level math/rand function (or
//     rand.Seed). The global source is process-wide shared state: it
//     makes results depend on everything else that has drawn from it,
//     including test ordering and parallelism.
//
// Legitimately wall-clock sites (e.g. reporting how long a build took,
// which is measurement, not behavior) carry //dwrlint:allow wallclock
// annotations with a justification.

// wallclockFuncs are the package time functions that read the real
// clock or block on it.
var wallclockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"Tick": true, "After": true, "AfterFunc": true,
	"NewTimer": true, "NewTicker": true,
}

// globalRandFuncs are the math/rand top-level functions that draw from
// (or reseed) the shared global source. New/NewSource are constructors,
// policed by the seed-plumbing analyzer instead.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true,
	"NormFloat64": true, "Perm": true, "Shuffle": true, "Read": true,
	"Seed": true,
}

func analyzeDeterminism(fc *fileCtx, cfg Config, report func(pos token.Pos, rule, msg string)) {
	if !cfg.Deterministic[fc.unit] {
		return
	}
	timeName := fc.importName("time")
	randName := fc.importName("math/rand")
	if timeName == "" && randName == "" {
		return
	}
	ast.Inspect(fc.file, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if timeName != "" && wallclockFuncs[sel.Sel.Name] && isPkgSel(sel, timeName, sel.Sel.Name) {
			report(sel.Pos(), "wallclock", fmt.Sprintf(
				"%s.%s in deterministic package %s: derive timing from virtual ticks, or annotate the site with //dwrlint:allow wallclock <why>",
				timeName, sel.Sel.Name, fc.unit))
		}
		if randName != "" && globalRandFuncs[sel.Sel.Name] && isPkgSel(sel, randName, sel.Sel.Name) {
			report(sel.Pos(), "globalrand", fmt.Sprintf(
				"global math/rand %s in deterministic package %s: thread a seeded *rand.Rand (internal/randx.New) instead",
				sel.Sel.Name, fc.unit))
		}
		return true
	})
}
