package lint

import (
	"go/ast"
	"go/token"
)

// The seed-plumbing analyzer ([seed]) polices how *rand.Rand values are
// constructed in deterministic packages. The contract: every generator
// is derived from an explicit seed, and non-test code goes through
// internal/randx.New so seeds stay visible at the call site and
// greppable in one place. Three shapes are flagged:
//
//   - rand.New(src) where src is not a literal rand.NewSource(...)
//     call: the source's provenance is invisible, so the generator
//     cannot be audited for determinism.
//   - rand.NewSource(expr) where expr reads the wall clock
//     (the classic rand.NewSource(time.Now().UnixNano())).
//   - in non-test files, any rand.New at all: use randx.New(seed).
//     Test files may use rand.New(rand.NewSource(<explicit seed>)),
//     which is equally deterministic and keeps fixtures stdlib-only.
//
// internal/randx itself is the one blessed wrapper; it is not in the
// deterministic package set, so its own rand.New is out of scope.
func analyzeSeedPlumbing(fc *fileCtx, cfg Config, report func(pos token.Pos, rule, msg string)) {
	if !cfg.Deterministic[fc.unit] {
		return
	}
	randName := fc.importName("math/rand")
	if randName == "" {
		return
	}
	timeName := fc.importName("time")
	ast.Inspect(fc.file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch {
		case isPkgSel(call.Fun, randName, "New"):
			if len(call.Args) != 1 {
				return true
			}
			src, ok := call.Args[0].(*ast.CallExpr)
			if !ok || !isPkgSel(src.Fun, randName, "NewSource") {
				report(call.Pos(), "seed",
					"rand.New with a source of invisible provenance: construct generators with randx.New(seed)")
				return true
			}
			if !fc.isTest {
				report(call.Pos(), "seed",
					"rand.New(rand.NewSource(...)) outside a test: use randx.New(seed) so seed plumbing stays auditable")
			}
		case isPkgSel(call.Fun, randName, "NewSource"):
			if len(call.Args) == 1 && timeName != "" && readsWallClock(call.Args[0], timeName) {
				report(call.Pos(), "seed",
					"rand.NewSource seeded from the wall clock: every run draws a different stream; use an explicit seed")
			}
		}
		return true
	})
}

// readsWallClock reports whether expr contains a call of a wall-clock
// function of package time.
func readsWallClock(expr ast.Expr, timeName string) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if found {
			return false
		}
		if sel, ok := n.(*ast.SelectorExpr); ok &&
			wallclockFuncs[sel.Sel.Name] && isPkgSel(sel, timeName, sel.Sel.Name) {
			found = true
			return false
		}
		return true
	})
	return found
}
