package chash

import (
	"fmt"
	"testing"
	"testing/quick"
)

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("host%d.example.com", i)
	}
	return out
}

func ringWith(members ...string) *Ring {
	r := NewRing(64)
	for _, m := range members {
		r.Add(m)
	}
	return r
}

func TestRingAssignsAllKeysToMembers(t *testing.T) {
	r := ringWith("a", "b", "c")
	members := map[string]bool{"a": true, "b": true, "c": true}
	for _, k := range keys(1000) {
		m := r.Assign(k)
		if !members[m] {
			t.Fatalf("key %q assigned to unknown member %q", k, m)
		}
	}
}

func TestRingEmptyReturnsEmptyString(t *testing.T) {
	r := NewRing(8)
	if got := r.Assign("x"); got != "" {
		t.Fatalf("empty ring assigned %q", got)
	}
	if got := r.AssignN("x", 3); got != nil {
		t.Fatalf("empty ring AssignN returned %v", got)
	}
}

func TestRingDeterministic(t *testing.T) {
	a := ringWith("a", "b", "c")
	b := ringWith("c", "a", "b") // insertion order must not matter
	for _, k := range keys(500) {
		if a.Assign(k) != b.Assign(k) {
			t.Fatalf("assignment depends on insertion order for key %q", k)
		}
	}
}

func TestRingAddIdempotent(t *testing.T) {
	r := ringWith("a", "b")
	before := make(map[string]string)
	for _, k := range keys(200) {
		before[k] = r.Assign(k)
	}
	r.Add("a")
	for k, v := range before {
		if got := r.Assign(k); got != v {
			t.Fatalf("re-adding member changed assignment of %q: %q -> %q", k, v, got)
		}
	}
	if r.Size() != 2 {
		t.Fatalf("size = %d after duplicate add, want 2", r.Size())
	}
}

func TestRingRemoveUnknownNoop(t *testing.T) {
	r := ringWith("a", "b")
	r.Remove("zzz")
	if r.Size() != 2 {
		t.Fatalf("size = %d after removing unknown member, want 2", r.Size())
	}
}

func TestRingChurnIsBounded(t *testing.T) {
	// Core consistent-hashing property (paper §3, UbiCrawler): adding one
	// member to n should move about 1/(n+1) of keys, not most of them.
	ks := keys(20000)
	before := ringWith("a0", "a1", "a2", "a3", "a4", "a5", "a6", "a7", "a8", "a9")
	after := ringWith("a0", "a1", "a2", "a3", "a4", "a5", "a6", "a7", "a8", "a9")
	after.Add("a10")
	frac := float64(Moved(before, after, ks)) / float64(len(ks))
	if frac > 0.20 {
		t.Fatalf("consistent hashing moved %.1f%% of keys on join, want ≈9%%", frac*100)
	}
	if frac < 0.02 {
		t.Fatalf("consistent hashing moved only %.1f%% of keys; new member got almost nothing", frac*100)
	}
}

func TestModChurnIsLarge(t *testing.T) {
	ks := keys(20000)
	ms := []string{"a0", "a1", "a2", "a3", "a4", "a5", "a6", "a7", "a8", "a9"}
	before := NewModAssigner(ms)
	after := NewModAssigner(append(ms, "a10"))
	frac := float64(Moved(before, after, ks)) / float64(len(ks))
	if frac < 0.5 {
		t.Fatalf("mod hashing moved only %.1f%% of keys, expected most", frac*100)
	}
}

func TestRingOnlyDepartedKeysMove(t *testing.T) {
	// Removing a member must relocate exactly the keys it owned.
	ks := keys(5000)
	before := ringWith("a", "b", "c", "d")
	ownedByD := map[string]bool{}
	for _, k := range ks {
		if before.Assign(k) == "d" {
			ownedByD[k] = true
		}
	}
	after := ringWith("a", "b", "c", "d")
	after.Remove("d")
	for _, k := range ks {
		moved := before.Assign(k) != after.Assign(k)
		if moved != ownedByD[k] {
			t.Fatalf("key %q: moved=%v but ownedByD=%v", k, moved, ownedByD[k])
		}
	}
}

func TestRingBalance(t *testing.T) {
	r := NewRing(512)
	n := 8
	for i := 0; i < n; i++ {
		r.Add(fmt.Sprintf("agent%d", i))
	}
	counts := map[string]int{}
	ks := keys(40000)
	for _, k := range ks {
		counts[r.Assign(k)]++
	}
	want := float64(len(ks)) / float64(n)
	for m, c := range counts {
		if float64(c) < 0.6*want || float64(c) > 1.5*want {
			t.Fatalf("member %s owns %d keys, want within [0.6, 1.5]× of %v", m, c, want)
		}
	}
}

func TestAssignNDistinct(t *testing.T) {
	r := ringWith("a", "b", "c", "d", "e")
	f := func(key string) bool {
		got := r.AssignN(key, 3)
		if len(got) != 3 {
			return false
		}
		seen := map[string]bool{}
		for _, m := range got {
			if seen[m] {
				return false
			}
			seen[m] = true
		}
		// First of AssignN must agree with Assign.
		return got[0] == r.Assign(key)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAssignNMoreThanMembers(t *testing.T) {
	r := ringWith("a", "b")
	got := r.AssignN("k", 10)
	if len(got) != 2 {
		t.Fatalf("AssignN returned %d members, want 2", len(got))
	}
}

func TestMembersSorted(t *testing.T) {
	r := ringWith("zebra", "alpha", "mid")
	got := r.Members()
	want := []string{"alpha", "mid", "zebra"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Members() = %v, want %v", got, want)
		}
	}
}

func TestModAssignerEmpty(t *testing.T) {
	m := NewModAssigner(nil)
	if got := m.Assign("x"); got != "" {
		t.Fatalf("empty ModAssigner assigned %q", got)
	}
}
