// Package chash implements the URL/host assignment functions discussed in
// Section 3 of the paper: a consistent-hashing ring with virtual nodes (as
// used by UbiCrawler to let crawling agents join and leave without
// re-hashing every server name) and a plain modulo-hash baseline whose
// churn behaviour the ring is compared against.
package chash

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
)

// hash64 hashes a string to a uint64 ring position. FNV-1a alone mixes
// poorly on short, similar strings (agent names differing in one digit
// land in clustered arcs), so its output is passed through a
// splitmix64-style finalizer for full avalanche.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer: a cheap bijective scrambler with
// good avalanche behaviour.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Ring is a consistent-hashing ring. Members (crawling agents or index
// servers) occupy several virtual points each; a key is assigned to the
// member owning the first point clockwise from the key's hash. Adding or
// removing a member relocates only the keys in the affected arcs —
// about 1/n of them — instead of nearly all keys as modulo hashing does.
//
// Ring is safe for concurrent use.
type Ring struct {
	mu       sync.RWMutex
	replicas int
	points   []uint64          // sorted virtual point positions
	owner    map[uint64]string // point position -> member
	members  map[string]bool
}

// NewRing creates a ring with the given number of virtual points per
// member. UbiCrawler-style deployments use on the order of 100 replicas;
// the default used when replicas <= 0 is 64.
func NewRing(replicas int) *Ring {
	if replicas <= 0 {
		replicas = 64
	}
	return &Ring{
		replicas: replicas,
		owner:    make(map[uint64]string),
		members:  make(map[string]bool),
	}
}

// Add inserts a member into the ring. Adding an existing member is a no-op.
func (r *Ring) Add(member string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.members[member] {
		return
	}
	r.members[member] = true
	for i := 0; i < r.replicas; i++ {
		p := hash64(fmt.Sprintf("%s#%d", member, i))
		// On the (astronomically unlikely) event of a point collision,
		// probe linearly for a free position to keep ownership unambiguous.
		for {
			if _, taken := r.owner[p]; !taken {
				break
			}
			p++
		}
		r.owner[p] = member
		r.points = append(r.points, p)
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i] < r.points[j] })
}

// Remove deletes a member and its virtual points. Removing an unknown
// member is a no-op.
func (r *Ring) Remove(member string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.members[member] {
		return
	}
	delete(r.members, member)
	kept := r.points[:0]
	for _, p := range r.points {
		if r.owner[p] == member {
			delete(r.owner, p)
			continue
		}
		kept = append(kept, p)
	}
	r.points = kept
}

// Members returns the current members in sorted order.
func (r *Ring) Members() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.members))
	for m := range r.members {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Size returns the number of members.
func (r *Ring) Size() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.members)
}

// Assign returns the member responsible for key, or "" if the ring is
// empty.
func (r *Ring) Assign(key string) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return ""
	}
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i] >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.owner[r.points[i]]
}

// AssignN returns the first n distinct members clockwise from key, used
// for replicated assignment (the paper's "consistent hashing, which
// replicates the hashing buckets"). Fewer members are returned if the
// ring has fewer than n.
func (r *Ring) AssignN(key string, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i] >= h })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; len(out) < n && i < len(r.points); i++ {
		m := r.owner[r.points[(start+i)%len(r.points)]]
		if !seen[m] {
			seen[m] = true
			out = append(out, m)
		}
	}
	return out
}

// ModAssigner is the baseline "trivial, but reasonable assignment policy"
// from Section 3: hash the server name and take it modulo the number of
// agents. It is cheap and balanced but relocates almost every key when
// the member set changes.
type ModAssigner struct {
	members []string
}

// NewModAssigner creates a modulo assigner over the given member list.
// The order of members matters: position in the slice is the bucket index.
func NewModAssigner(members []string) *ModAssigner {
	return &ModAssigner{members: append([]string(nil), members...)}
}

// Assign returns the member for key, or "" if there are no members.
func (m *ModAssigner) Assign(key string) string {
	if len(m.members) == 0 {
		return ""
	}
	return m.members[hash64(key)%uint64(len(m.members))]
}

// Members returns a copy of the member list.
func (m *ModAssigner) Members() []string {
	return append([]string(nil), m.members...)
}

// Assigner is the interface shared by Ring and ModAssigner, letting the
// crawler switch assignment policies.
type Assigner interface {
	Assign(key string) string
}

// Moved counts how many of the given keys change owner between two
// assigners. It is the churn metric used by experiment C2.
func Moved(before, after Assigner, keys []string) int {
	moved := 0
	for _, k := range keys {
		if before.Assign(k) != after.Assign(k) {
			moved++
		}
	}
	return moved
}
