// Package randx provides deterministic random samplers used by the
// synthetic Web, query-log, and failure models.
//
// Every function takes an explicit *rand.Rand so that experiments are
// reproducible: callers create sources with fixed seeds and thread them
// through the whole system. Nothing in this package reads global state.
package randx

import (
	"math"
	"math/rand"
	"sort"
)

// New returns a rand.Rand seeded with seed. It is a convenience wrapper so
// callers do not have to import math/rand just to build a source.
func New(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Zipf draws ranks in [0, n) with probability proportional to
// 1/(rank+1)^s. Unlike math/rand's Zipf it supports any exponent s > 0
// (including the classic s = 1 observed for query and term frequencies)
// and small n, at the cost of precomputing the distribution.
type Zipf struct {
	cdf []float64 // cumulative probabilities, cdf[n-1] == 1
}

// NewZipf builds a Zipf sampler over n ranks with exponent s.
// It panics if n <= 0 or s <= 0, which indicate a programming error.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic("randx: NewZipf with n <= 0")
	}
	if s <= 0 {
		panic("randx: NewZipf with s <= 0")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += math.Pow(float64(i+1), -s)
		cdf[i] = sum
	}
	inv := 1 / sum
	for i := range cdf {
		cdf[i] *= inv
	}
	cdf[n-1] = 1 // guard against floating-point undershoot
	return &Zipf{cdf: cdf}
}

// N returns the number of ranks the sampler draws from.
func (z *Zipf) N() int { return len(z.cdf) }

// Draw returns a rank in [0, N()).
func (z *Zipf) Draw(rng *rand.Rand) int {
	u := rng.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}

// Prob returns the probability of drawing rank i.
func (z *Zipf) Prob(i int) float64 {
	if i == 0 {
		return z.cdf[0]
	}
	return z.cdf[i] - z.cdf[i-1]
}

// Pareto draws a value from a Pareto (power-law) distribution with the
// given minimum xm and shape alpha. Web page in-degrees and posting-list
// lengths follow such heavy-tailed laws.
func Pareto(rng *rand.Rand, xm, alpha float64) float64 {
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// BoundedPareto draws a Pareto(xm, alpha) value truncated to at most max.
func BoundedPareto(rng *rand.Rand, xm, alpha, max float64) float64 {
	v := Pareto(rng, xm, alpha)
	if v > max {
		return max
	}
	return v
}

// Exp draws an exponential value with the given mean. It is used for
// inter-arrival times, failure inter-occurrence times, and service times.
func Exp(rng *rand.Rand, mean float64) float64 {
	return rng.ExpFloat64() * mean
}

// LogNormal draws a log-normal value with the given location mu and scale
// sigma (parameters of the underlying normal). Repair durations and Web
// server response times are well modelled as log-normal.
func LogNormal(rng *rand.Rand, mu, sigma float64) float64 {
	return math.Exp(rng.NormFloat64()*sigma + mu)
}

// Weighted selects an index in [0, len(weights)) with probability
// proportional to weights[i]. It panics if weights is empty or sums to a
// non-positive value.
func Weighted(rng *rand.Rand, weights []float64) int {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	if len(weights) == 0 || total <= 0 {
		panic("randx: Weighted with empty or non-positive weights")
	}
	u := rng.Float64() * total
	acc := 0.0
	for i, w := range weights {
		acc += w
		if u < acc {
			return i
		}
	}
	return len(weights) - 1
}

// Perm fills a permutation of [0, n) using rng. It is rand.Perm exposed
// for symmetry with the other helpers.
func Perm(rng *rand.Rand, n int) []int { return rng.Perm(n) }

// Sample returns k distinct values drawn uniformly from [0, n) using
// reservoir sampling. If k >= n it returns all of [0, n) in order.
func Sample(rng *rand.Rand, n, k int) []int {
	if k >= n {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = i
	}
	for i := k; i < n; i++ {
		j := rng.Intn(i + 1)
		if j < k {
			out[j] = i
		}
	}
	return out
}

// Bernoulli returns true with probability p.
func Bernoulli(rng *rand.Rand, p float64) bool {
	return rng.Float64() < p
}
