package randx

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Int63() != b.Int63() {
			t.Fatalf("sources with the same seed diverged at draw %d", i)
		}
	}
}

func TestZipfRankZeroMostLikely(t *testing.T) {
	rng := New(1)
	z := NewZipf(1000, 1.0)
	counts := make([]int, 1000)
	const draws = 200000
	for i := 0; i < draws; i++ {
		counts[z.Draw(rng)]++
	}
	if counts[0] <= counts[1] || counts[1] <= counts[10] {
		t.Fatalf("zipf counts not decreasing: c0=%d c1=%d c10=%d", counts[0], counts[1], counts[10])
	}
	// For s=1, p(0)/p(1) == 2. Allow generous sampling slack.
	ratio := float64(counts[0]) / float64(counts[1])
	if ratio < 1.6 || ratio > 2.5 {
		t.Fatalf("p(0)/p(1) ratio = %.2f, want about 2", ratio)
	}
}

func TestZipfProbSumsToOne(t *testing.T) {
	for _, s := range []float64{0.5, 1.0, 1.5, 2.0} {
		z := NewZipf(500, s)
		sum := 0.0
		for i := 0; i < z.N(); i++ {
			sum += z.Prob(i)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("s=%v: probabilities sum to %v, want 1", s, sum)
		}
	}
}

func TestZipfDrawInRange(t *testing.T) {
	f := func(seed int64) bool {
		rng := New(seed)
		z := NewZipf(37, 1.1)
		for i := 0; i < 200; i++ {
			r := z.Draw(rng)
			if r < 0 || r >= 37 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZipfPanicsOnBadArgs(t *testing.T) {
	for _, tc := range []struct {
		n int
		s float64
	}{{0, 1}, {-1, 1}, {10, 0}, {10, -2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewZipf(%d, %v) did not panic", tc.n, tc.s)
				}
			}()
			NewZipf(tc.n, tc.s)
		}()
	}
}

func TestParetoMinimum(t *testing.T) {
	rng := New(7)
	for i := 0; i < 1000; i++ {
		v := Pareto(rng, 2.5, 1.3)
		if v < 2.5 {
			t.Fatalf("Pareto drew %v below minimum 2.5", v)
		}
	}
}

func TestBoundedParetoRange(t *testing.T) {
	f := func(seed int64) bool {
		rng := New(seed)
		v := BoundedPareto(rng, 1, 1.1, 50)
		return v >= 1 && v <= 50
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestExpMean(t *testing.T) {
	rng := New(3)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += Exp(rng, 25)
	}
	mean := sum / n
	if mean < 23 || mean > 27 {
		t.Fatalf("exponential sample mean %v, want about 25", mean)
	}
}

func TestLogNormalPositive(t *testing.T) {
	rng := New(9)
	for i := 0; i < 1000; i++ {
		if v := LogNormal(rng, 0, 1); v <= 0 {
			t.Fatalf("LogNormal drew non-positive %v", v)
		}
	}
}

func TestWeightedRespectsWeights(t *testing.T) {
	rng := New(11)
	counts := [3]int{}
	for i := 0; i < 60000; i++ {
		counts[Weighted(rng, []float64{1, 2, 3})]++
	}
	if !(counts[0] < counts[1] && counts[1] < counts[2]) {
		t.Fatalf("weighted counts not ordered: %v", counts)
	}
	// Expected proportions 1/6, 2/6, 3/6.
	if got := float64(counts[2]) / 60000; math.Abs(got-0.5) > 0.02 {
		t.Fatalf("weight-3 proportion %v, want about 0.5", got)
	}
}

func TestWeightedPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Weighted(empty) did not panic")
		}
	}()
	Weighted(New(1), nil)
}

func TestSampleDistinctAndInRange(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, k := 50, 12
		s := Sample(rng, n, k)
		if len(s) != k {
			return false
		}
		seen := map[int]bool{}
		for _, v := range s {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSampleKGreaterThanN(t *testing.T) {
	s := Sample(New(1), 5, 10)
	if len(s) != 5 {
		t.Fatalf("Sample(n=5, k=10) returned %d values, want 5", len(s))
	}
	for i, v := range s {
		if v != i {
			t.Fatalf("Sample(n=5, k=10)[%d] = %d, want %d", i, v, i)
		}
	}
}

func TestBernoulliExtremes(t *testing.T) {
	rng := New(5)
	for i := 0; i < 100; i++ {
		if Bernoulli(rng, 0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !Bernoulli(rng, 1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}
