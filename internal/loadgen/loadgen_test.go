package loadgen

import (
	"math"
	"reflect"
	"testing"

	"dwr/internal/querylog"
	"dwr/internal/server"
	"dwr/internal/simweb"
)

func testLog(t *testing.T) *querylog.Log {
	t.Helper()
	wcfg := simweb.DefaultConfig()
	wcfg.Hosts = 40
	wcfg.MaxPages = 30
	wcfg.VocabSize = 1000
	web := simweb.New(wcfg)
	lcfg := querylog.DefaultConfig()
	lcfg.Distinct = 200
	lcfg.Total = 1500
	return querylog.Generate(web, lcfg)
}

func TestOpenPoisson(t *testing.T) {
	lg := testLog(t)
	const rate, n = 500.0, 4000
	src := Open(lg, OpenConfig{Seed: 1, Rate: rate, N: n, BatchFrac: 0.3})
	arr := src.Init()
	if len(arr) != n {
		t.Fatalf("generated %d of %d arrivals", len(arr), n)
	}
	batch := 0
	prev := 0.0
	for i, a := range arr {
		if a.At <= prev {
			t.Fatalf("arrival %d at %v not after %v", i, a.At, prev)
		}
		prev = a.At
		if a.Req.Class == server.Batch {
			batch++
		}
		// Requests replay the log's query stream in order.
		if want := lg.Queries[i%len(lg.Queries)].Key; a.Req.Key != want {
			t.Fatalf("arrival %d carries %q; want log query %q", i, a.Req.Key, want)
		}
	}
	// Mean arrival rate within 10% of λ.
	if got := float64(n) / arr[n-1].At; math.Abs(got/rate-1) > 0.1 {
		t.Fatalf("realized rate %.1f qps; want ≈%.0f", got, rate)
	}
	if frac := float64(batch) / n; frac < 0.25 || frac > 0.35 {
		t.Fatalf("batch fraction %.3f; want ≈0.3", frac)
	}
	// Open loop: completions never spawn arrivals.
	if _, ok := src.OnDone(arr[0], 1); ok {
		t.Fatal("open-loop source issued a follow-up")
	}
}

func TestOpenConstantSpacing(t *testing.T) {
	lg := testLog(t)
	arr := Open(lg, OpenConfig{Seed: 2, Rate: 100, N: 50, Process: Constant}).Init()
	for i, a := range arr {
		want := float64(i+1) / 100
		if math.Abs(a.At-want) > 1e-9 {
			t.Fatalf("constant arrival %d at %v; want %v", i, a.At, want)
		}
	}
}

func TestOpenDeterminism(t *testing.T) {
	lg := testLog(t)
	cfg := OpenConfig{Seed: 3, Rate: 200, N: 500, BatchFrac: 0.5}
	a := Open(lg, cfg).Init()
	b := Open(lg, cfg).Init()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed, different open-loop schedules")
	}
	c := Open(lg, OpenConfig{Seed: 4, Rate: 200, N: 500, BatchFrac: 0.5}).Init()
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds, identical schedules")
	}
}

func TestClosedLoopChaining(t *testing.T) {
	lg := testLog(t)
	const users, n = 10, 100
	src := Closed(lg, ClosedConfig{Seed: 5, Users: users, N: n, ThinkMeanSec: 0.05})
	init := src.Init()
	if len(init) != users {
		t.Fatalf("seeded %d arrivals for %d users", len(init), users)
	}
	issued := len(init)
	// Drain: complete arrivals in order, collecting follow-ups.
	pending := init
	for len(pending) > 0 {
		a := pending[0]
		pending = pending[1:]
		next, ok := src.OnDone(a, a.At+0.001)
		if !ok {
			continue
		}
		issued++
		if next.User != a.User {
			t.Fatalf("follow-up for user %d issued as user %d", a.User, next.User)
		}
		if next.At < a.At+0.001 {
			t.Fatalf("follow-up at %v before its trigger %v", next.At, a.At+0.001)
		}
		pending = append(pending, next)
	}
	if issued != n {
		t.Fatalf("closed loop issued %d of %d", issued, n)
	}
}

func TestClosedUsersCappedByN(t *testing.T) {
	lg := testLog(t)
	src := Closed(lg, ClosedConfig{Seed: 6, Users: 50, N: 5})
	if got := len(src.Init()); got != 5 {
		t.Fatalf("seeded %d arrivals with N=5", got)
	}
}
