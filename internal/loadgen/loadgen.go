// Package loadgen builds deterministic workloads for the serving
// front-end (internal/server) out of internal/querylog traffic.
//
// Two generator shapes matter for capacity work and behave very
// differently around saturation:
//
//   - Open loop: arrivals come from an effectively infinite user
//     population at a fixed rate λ, independent of how the system is
//     doing — the G/G/c model's arrival process. Past λ = c/E[S] an
//     open-loop system is unstable: whatever is not shed queues without
//     bound, which is exactly the regime the front-end's admission
//     control and shedding exist for.
//
//   - Closed loop: N users each wait for their answer (or its
//     shedding), think for a while, and only then ask again. Throughput
//     self-limits to N/(E[R]+Z), so a closed-loop test can saturate the
//     pool but never builds the unbounded backlog an open-loop overload
//     does — the reason capacity claims must be validated open-loop.
//
// All randomness derives from the config seed, so a generated workload
// replays identically.
package loadgen

import (
	"math/rand"

	"dwr/internal/querylog"
	"dwr/internal/randx"
	"dwr/internal/server"
)

// Process selects the open-loop arrival process.
type Process int

// Arrival processes.
const (
	// Poisson draws exponential inter-arrival times (the M in M/G/c);
	// the memoryless default for a large independent user population.
	Poisson Process = iota
	// Constant spaces arrivals exactly 1/rate apart (the D in D/G/c).
	Constant
)

// OpenConfig sizes an open-loop generator.
type OpenConfig struct {
	Seed int64
	// Rate is the offered arrival rate λ in queries per second (> 0).
	Rate float64
	// N is the total number of arrivals to generate.
	N int
	// Process is the inter-arrival law.
	Process Process
	// BatchFrac is the fraction of arrivals carrying the Batch priority
	// class (0 = all interactive).
	BatchFrac float64
	// K is the per-request top-k (0 defers to the server's default).
	K int
}

// openSource replays a precomputed schedule.
type openSource struct {
	arrivals []server.Arrival
}

func (s *openSource) Init() []server.Arrival { return s.arrivals }
func (s *openSource) OnDone(server.Arrival, float64) (server.Arrival, bool) {
	return server.Arrival{}, false
}

// Open generates an open-loop workload replaying lg's queries in log
// order (cyclically), so the served mix keeps the log's popularity
// skew and term statistics.
func Open(lg *querylog.Log, cfg OpenConfig) server.Source {
	rng := randx.New(cfg.Seed)
	s := &openSource{arrivals: make([]server.Arrival, 0, cfg.N)}
	t := 0.0
	for i := 0; i < cfg.N && len(lg.Queries) > 0; i++ {
		switch cfg.Process {
		case Constant:
			t += 1 / cfg.Rate
		default:
			t += randx.Exp(rng, 1/cfg.Rate)
		}
		s.arrivals = append(s.arrivals, server.Arrival{
			At:   t,
			User: i,
			Req:  makeRequest(rng, lg, i, cfg.BatchFrac, cfg.K),
		})
	}
	return s
}

// ClosedConfig sizes a closed-loop generator.
type ClosedConfig struct {
	Seed int64
	// Users is the population size N.
	Users int
	// ThinkMeanSec is the mean exponential think time Z between a
	// user's answer and their next request.
	ThinkMeanSec float64
	// N caps the total requests issued across all users.
	N int
	// BatchFrac is the fraction of requests carrying the Batch class.
	BatchFrac float64
	// K is the per-request top-k (0 defers to the server's default).
	K int
}

// closedSource issues each user's next request only after the previous
// one terminated.
type closedSource struct {
	cfg    ClosedConfig
	lg     *querylog.Log
	rng    *rand.Rand
	issued int
}

func (s *closedSource) Init() []server.Arrival {
	n := s.cfg.Users
	if n > s.cfg.N {
		n = s.cfg.N
	}
	out := make([]server.Arrival, 0, n)
	for u := 0; u < n; u++ {
		out = append(out, server.Arrival{
			At:   randx.Exp(s.rng, s.cfg.ThinkMeanSec),
			User: u,
			Req:  makeRequest(s.rng, s.lg, s.issued, s.cfg.BatchFrac, s.cfg.K),
		})
		s.issued++
	}
	return out
}

func (s *closedSource) OnDone(a server.Arrival, at float64) (server.Arrival, bool) {
	if s.issued >= s.cfg.N {
		return server.Arrival{}, false
	}
	next := server.Arrival{
		At:   at + randx.Exp(s.rng, s.cfg.ThinkMeanSec),
		User: a.User,
		Req:  makeRequest(s.rng, s.lg, s.issued, s.cfg.BatchFrac, s.cfg.K),
	}
	s.issued++
	return next, true
}

// Closed generates a closed-loop workload of cfg.Users users replaying
// lg's queries. The serving loop calls OnDone in deterministic event
// order, so the draw sequence — and therefore the workload — is
// reproducible for a fixed seed.
func Closed(lg *querylog.Log, cfg ClosedConfig) server.Source {
	if cfg.ThinkMeanSec <= 0 {
		cfg.ThinkMeanSec = 0.01
	}
	return &closedSource{cfg: cfg, lg: lg, rng: randx.New(cfg.Seed)}
}

// makeRequest builds the i-th request from the log's query stream.
func makeRequest(rng *rand.Rand, lg *querylog.Log, i int, batchFrac float64, k int) server.Request {
	q := lg.Queries[i%len(lg.Queries)]
	cl := server.Interactive
	if randx.Bernoulli(rng, batchFrac) {
		cl = server.Batch
	}
	return server.Request{Terms: q.Terms, Key: q.Key, Class: cl, K: k}
}
