// Package partition implements the index partitioning strategies of
// Section 4: horizontal (document) partitioning — random, round-robin,
// topical k-means, and query-driven co-clustering (Puppin et al.) — and
// vertical (term) partitioning — random, query-weighted bin-packing
// (Moffat et al.), and co-occurrence-aware assignment (Lucchese et al.).
package partition

import (
	"math"
	"math/rand"
	"sort"
)

// DocPartition maps external document IDs to partitions.
type DocPartition struct {
	K      int
	Parts  [][]int     // Parts[p] lists the documents of partition p
	Assign map[int]int // doc -> partition
}

func newDocPartition(k int) DocPartition {
	return DocPartition{K: k, Parts: make([][]int, k), Assign: make(map[int]int)}
}

func (dp *DocPartition) add(doc, p int) {
	dp.Parts[p] = append(dp.Parts[p], doc)
	dp.Assign[doc] = p
}

// Sizes returns the document count per partition.
func (dp *DocPartition) Sizes() []int {
	out := make([]int, dp.K)
	for p, docs := range dp.Parts {
		out[p] = len(docs)
	}
	return out
}

// RandomDocs assigns each document to a uniformly random partition — the
// baseline the paper notes "does not guarantee an even load balance" yet
// is what most deployed systems use.
func RandomDocs(rng *rand.Rand, docs []int, k int) DocPartition {
	dp := newDocPartition(k)
	for _, d := range docs {
		dp.add(d, rng.Intn(k))
	}
	return dp
}

// RoundRobinDocs deals documents to partitions in turn, giving exactly
// balanced sizes.
func RoundRobinDocs(docs []int, k int) DocPartition {
	dp := newDocPartition(k)
	for i, d := range docs {
		dp.add(d, i%k)
	}
	return dp
}

// DocVector is a sparse term-weight vector describing one document, the
// input to topical clustering.
type DocVector struct {
	Ext int
	TF  map[int]float64 // term ID -> weight
}

// KMeansDocs clusters documents into k topical partitions with spherical
// k-means (cosine similarity) — the "k-means clustering to partition a
// collection according to topics" of Section 4. iters bounds the Lloyd
// iterations.
func KMeansDocs(rng *rand.Rand, vecs []DocVector, k, iters int) DocPartition {
	dp := newDocPartition(k)
	if len(vecs) == 0 {
		return dp
	}
	if k >= len(vecs) {
		for i, v := range vecs {
			dp.add(v.Ext, i%k)
		}
		return dp
	}
	// Normalize inputs once.
	norm := make([]map[int]float64, len(vecs))
	for i, v := range vecs {
		norm[i] = normalize(v.TF)
	}
	// Initialize centroids from k distinct random documents.
	centroids := make([]map[int]float64, k)
	for i, idx := range randPerm(rng, len(vecs))[:k] {
		centroids[i] = norm[idx]
	}
	assign := make([]int, len(vecs))
	for i := range assign {
		assign[i] = -1
	}
	for iter := 0; iter < iters; iter++ {
		changed := false
		for i := range vecs {
			best, bestSim := 0, -1.0
			for c := range centroids {
				if sim := dot(norm[i], centroids[c]); sim > bestSim {
					best, bestSim = c, sim
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed {
			break
		}
		// Recompute centroids.
		sums := make([]map[int]float64, k)
		counts := make([]int, k)
		for c := range sums {
			sums[c] = make(map[int]float64)
		}
		for i, c := range assign {
			counts[c]++
			for t, w := range norm[i] {
				sums[c][t] += w
			}
		}
		for c := range centroids {
			if counts[c] == 0 {
				// Re-seed an empty cluster with a random document.
				centroids[c] = norm[rng.Intn(len(vecs))]
				continue
			}
			centroids[c] = normalize(sums[c])
		}
	}
	for i, v := range vecs {
		dp.add(v.Ext, assign[i])
	}
	return dp
}

func normalize(v map[int]float64) map[int]float64 {
	var n float64
	for _, w := range v {
		n += w * w
	}
	if n == 0 {
		return v
	}
	n = math.Sqrt(n)
	out := make(map[int]float64, len(v))
	for t, w := range v {
		out[t] = w / n
	}
	return out
}

func dot(a, b map[int]float64) float64 {
	if len(b) < len(a) {
		a, b = b, a
	}
	s := 0.0
	for t, w := range a {
		s += w * b[t]
	}
	return s
}

func randPerm(rng *rand.Rand, n int) []int { return rng.Perm(n) }

// QueryDocs is one training observation for query-driven partitioning:
// a distinct query and the documents it retrieved.
type QueryDocs struct {
	Key   string
	Terms []string
	Docs  []int
}

// CoClusterResult is the output of query-driven co-clustering: the
// document partition plus the model needed for collection selection.
type CoClusterResult struct {
	Partition DocPartition
	// QueryPart scores partitions per training query key:
	// QueryPart[key][p] = fraction of the query's results in partition p.
	QueryPart map[string][]float64
	// NeverRecalled lists documents no training query retrieved; Puppin
	// et al. found these are ≈53% of the collection, and they are spread
	// round-robin across partitions (they cost little query load).
	NeverRecalled []int
}

// CoClusterDocs implements query-driven document partitioning in the
// spirit of Puppin et al.: each document is represented by the training
// queries that recall it, documents are clustered in query space
// (spherical k-means over query-incidence vectors), and the resulting
// query→partition co-occurrence doubles as the collection-selection
// model. allDocs supplies the full collection so never-recalled
// documents can be placed too.
func CoClusterDocs(rng *rand.Rand, train []QueryDocs, allDocs []int, k, iters int) CoClusterResult {
	// Build doc vectors in query space, weighting each query by its
	// training frequency.
	queryID := make(map[string]int)
	queryFreq := make(map[string]float64)
	for _, q := range train {
		if _, ok := queryID[q.Key]; !ok {
			queryID[q.Key] = len(queryID)
		}
		queryFreq[q.Key]++
	}
	docVec := make(map[int]map[int]float64)
	for _, q := range train {
		qi := queryID[q.Key]
		for _, d := range q.Docs {
			v, ok := docVec[d]
			if !ok {
				v = make(map[int]float64)
				docVec[d] = v
			}
			v[qi]++
		}
	}
	recalled := make([]DocVector, 0, len(docVec))
	for d, v := range docVec {
		recalled = append(recalled, DocVector{Ext: d, TF: v})
	}
	// Deterministic order for reproducibility (map iteration is random).
	sort.Slice(recalled, func(i, j int) bool { return recalled[i].Ext < recalled[j].Ext })

	part := KMeansDocs(rng, recalled, k, iters)

	// Spread never-recalled documents round-robin.
	var never []int
	for _, d := range allDocs {
		if _, ok := docVec[d]; !ok {
			never = append(never, d)
		}
	}
	sort.Ints(never)
	for i, d := range never {
		part.add(d, i%k)
	}

	// Selection model: distribution of each training query's results.
	qp := make(map[string][]float64, len(queryID))
	for _, q := range train {
		if _, done := qp[q.Key]; done {
			continue
		}
		dist := make([]float64, k)
		total := 0.0
		for _, d := range q.Docs {
			if p, ok := part.Assign[d]; ok {
				dist[p]++
				total++
			}
		}
		if total > 0 {
			for p := range dist {
				dist[p] /= total
			}
		}
		qp[q.Key] = dist
	}
	return CoClusterResult{Partition: part, QueryPart: qp, NeverRecalled: never}
}
