package partition

import (
	"fmt"
	"math/rand"
	"testing"

	"dwr/internal/metrics"
)

func docIDs(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i * 2
	}
	return out
}

func TestRandomDocsCoversAll(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	dp := RandomDocs(rng, docIDs(1000), 4)
	if len(dp.Assign) != 1000 {
		t.Fatalf("assigned %d docs, want 1000", len(dp.Assign))
	}
	total := 0
	for _, s := range dp.Sizes() {
		if s == 0 {
			t.Fatal("empty partition from 1000 random docs over 4 parts")
		}
		total += s
	}
	if total != 1000 {
		t.Fatalf("sizes sum %d", total)
	}
}

func TestRoundRobinBalanced(t *testing.T) {
	dp := RoundRobinDocs(docIDs(103), 4)
	sizes := dp.Sizes()
	for _, s := range sizes {
		if s < 25 || s > 26 {
			t.Fatalf("round robin sizes %v not balanced", sizes)
		}
	}
}

// topicalVecs builds vectors with k clear topic clusters.
func topicalVecs(rng *rand.Rand, n, topics int) []DocVector {
	vecs := make([]DocVector, n)
	for i := range vecs {
		topic := i % topics
		tf := make(map[int]float64)
		// Topic band terms [topic*100, topic*100+20), plus noise.
		for j := 0; j < 10; j++ {
			tf[topic*100+rng.Intn(20)] += 3
		}
		for j := 0; j < 3; j++ {
			tf[1000+rng.Intn(50)] += 1
		}
		vecs[i] = DocVector{Ext: i, TF: tf}
	}
	return vecs
}

func TestKMeansRecoversTopics(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	vecs := topicalVecs(rng, 400, 4)
	dp := KMeansDocs(rng, vecs, 4, 20)
	// Compute cluster purity: each cluster's majority topic share.
	pure, total := 0, 0
	for _, docs := range dp.Parts {
		if len(docs) == 0 {
			continue
		}
		counts := map[int]int{}
		for _, d := range docs {
			counts[d%4]++
		}
		best := 0
		for _, c := range counts {
			if c > best {
				best = c
			}
		}
		pure += best
		total += len(docs)
	}
	if purity := float64(pure) / float64(total); purity < 0.8 {
		t.Fatalf("k-means purity %.2f, want ≥ 0.8 on clearly topical data", purity)
	}
}

func TestKMeansEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	if dp := KMeansDocs(rng, nil, 3, 5); len(dp.Assign) != 0 {
		t.Fatal("empty input produced assignments")
	}
	// k >= n: every doc still assigned.
	vecs := topicalVecs(rng, 3, 2)
	dp := KMeansDocs(rng, vecs, 5, 5)
	if len(dp.Assign) != 3 {
		t.Fatalf("k>n assigned %d docs", len(dp.Assign))
	}
}

func TestCoClusterDocsPartitionsEverything(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	all := docIDs(500)
	var train []QueryDocs
	for q := 0; q < 80; q++ {
		topic := q % 4
		docs := []int{}
		for j := 0; j < 10; j++ {
			// Queries of topic T recall docs where (d/2)%4 == T.
			d := (topic + 4*rng.Intn(100)) % 500
			docs = append(docs, all[d])
		}
		train = append(train, QueryDocs{Key: fmt.Sprintf("q%d", q), Docs: docs})
	}
	res := CoClusterDocs(rng, train, all, 4, 15)
	if len(res.Partition.Assign) != len(all) {
		t.Fatalf("assigned %d of %d docs", len(res.Partition.Assign), len(all))
	}
	if len(res.NeverRecalled) == 0 {
		t.Fatal("expected some never-recalled documents")
	}
	for key, dist := range res.QueryPart {
		sum := 0.0
		for _, v := range dist {
			sum += v
		}
		if sum < 0.99 || sum > 1.01 {
			t.Fatalf("query %s distribution sums to %v", key, sum)
		}
	}
}

func TestCoClusterConcentratesQueries(t *testing.T) {
	// Queries with strongly clustered results should map mostly to one
	// partition each.
	rng := rand.New(rand.NewSource(5))
	all := docIDs(400)
	var train []QueryDocs
	for q := 0; q < 60; q++ {
		topic := q % 4
		var docs []int
		for j := 0; j < 8; j++ {
			docs = append(docs, all[(topic*100+rng.Intn(100))%400])
		}
		train = append(train, QueryDocs{Key: fmt.Sprintf("q%d", q), Docs: docs})
	}
	res := CoClusterDocs(rng, train, all, 4, 20)
	concentrated := 0
	for _, dist := range res.QueryPart {
		max := 0.0
		for _, v := range dist {
			if v > max {
				max = v
			}
		}
		if max >= 0.5 {
			concentrated++
		}
	}
	if frac := float64(concentrated) / float64(len(res.QueryPart)); frac < 0.7 {
		t.Fatalf("only %.2f of queries concentrate in one partition", frac)
	}
}

func TestBinPackingBalances(t *testing.T) {
	// Heavy-tailed weights: bin-packing must balance far better than the
	// skew of the weights themselves.
	terms := make([]string, 500)
	w := make(map[string]float64, len(terms))
	for i := range terms {
		terms[i] = fmt.Sprintf("t%03d", i)
		w[terms[i]] = 1.0 / float64(i+8) * 1000 // Zipf-ish, capped head
	}
	weight := func(t string) float64 { return w[t] }
	tp := BinPackTerms(terms, weight, 8)
	im := metrics.NewImbalance(tp.Loads(weight))
	if im.MaxOver > 1.05 {
		t.Fatalf("bin-packed MaxOver = %.3f, want ≤ 1.05", im.MaxOver)
	}
	rng := rand.New(rand.NewSource(6))
	rtp := RandomTerms(rng, terms, 8)
	rim := metrics.NewImbalance(rtp.Loads(weight))
	if im.CV >= rim.CV {
		t.Fatalf("bin-packing CV %.3f not better than random CV %.3f", im.CV, rim.CV)
	}
}

func TestRandomTermsAssignsAll(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	terms := []string{"a", "b", "c", "d", "e"}
	tp := RandomTerms(rng, terms, 3)
	for _, term := range terms {
		p, ok := tp.Assign[term]
		if !ok || p < 0 || p >= 3 {
			t.Fatalf("term %q assigned to %d (ok=%v)", term, p, ok)
		}
	}
}

func TestCoOccurReducesPartsPerQuery(t *testing.T) {
	// Build queries with strong pair structure: terms 2i and 2i+1 always
	// co-occur. Co-occurrence-aware placement should contact fewer
	// partitions per query than plain bin-packing.
	nPairs := 200
	var terms []string
	w := map[string]float64{}
	co := map[[2]string]int{}
	var queries [][]string
	for i := 0; i < nPairs; i++ {
		a, b := fmt.Sprintf("a%03d", i), fmt.Sprintf("b%03d", i)
		terms = append(terms, a, b)
		// Distinct weights per term so plain bin-packing (which sorts by
		// weight) scatters the pairs across bins.
		w[a], w[b] = 10+float64(i%13), 5+float64(i%7)
		pair := [2]string{a, b}
		if a > b {
			pair = [2]string{b, a}
		}
		co[pair] = 50
		for r := 0; r < 5; r++ {
			queries = append(queries, []string{a, b})
		}
	}
	weight := func(t string) float64 { return w[t] }
	bp := BinPackTerms(terms, weight, 8)
	cp := CoOccurTerms(terms, weight, co, 8, 0.25)

	bpAvg := bp.AvgPartsPerQuery(queries)
	cpAvg := cp.AvgPartsPerQuery(queries)
	if cpAvg >= bpAvg {
		t.Fatalf("co-occurrence-aware avg parts %.2f not below bin-packing %.2f", cpAvg, bpAvg)
	}
	if cpAvg > 1.2 {
		t.Fatalf("co-occurrence-aware avg parts %.2f, want ≈1 on pure pair queries", cpAvg)
	}
	// And its load must remain roughly balanced.
	im := metrics.NewImbalance(cp.Loads(weight))
	if im.MaxOver > 1.3 {
		t.Fatalf("co-occurrence partition MaxOver %.2f exceeds slack", im.MaxOver)
	}
}

func TestPartsOf(t *testing.T) {
	tp := TermPartition{K: 3, Assign: map[string]int{"a": 0, "b": 1, "c": 0}}
	got := tp.PartsOf([]string{"a", "b", "c", "unknown"})
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("PartsOf = %v, want [0 1]", got)
	}
	if tp.AvgPartsPerQuery(nil) != 0 {
		t.Fatal("empty query stream should average 0")
	}
}
