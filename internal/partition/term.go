package partition

import (
	"math/rand"
	"sort"
)

// TermPartition maps terms to partitions (vertical slicing of the T×D
// matrix, Figure 1 right).
type TermPartition struct {
	K      int
	Assign map[string]int
}

// PartsOf returns the set of partitions a query's terms touch — the
// "number of contacted servers" a term-partitioned system wants to
// minimize.
func (tp *TermPartition) PartsOf(terms []string) []int {
	seen := make(map[int]bool)
	var out []int
	for _, t := range terms {
		if p, ok := tp.Assign[t]; ok && !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	sort.Ints(out)
	return out
}

// Loads returns the total weight per partition under the given term
// weight function.
func (tp *TermPartition) Loads(weight func(string) float64) []float64 {
	out := make([]float64, tp.K)
	for t, p := range tp.Assign {
		out[p] += weight(t)
	}
	return out
}

// RandomTerms assigns each term to a uniformly random partition.
func RandomTerms(rng *rand.Rand, terms []string, k int) TermPartition {
	tp := TermPartition{K: k, Assign: make(map[string]int, len(terms))}
	for _, t := range terms {
		tp.Assign[t] = rng.Intn(k)
	}
	return tp
}

// BinPackTerms implements Moffat et al.'s load-balanced term
// partitioning: terms are objects with weight proportional to their
// query-log frequency times posting-list length, packed into k bins by
// longest-processing-time greedy (heaviest term to the lightest bin).
func BinPackTerms(terms []string, weight func(string) float64, k int) TermPartition {
	tp := TermPartition{K: k, Assign: make(map[string]int, len(terms))}
	order := append([]string(nil), terms...)
	sort.Slice(order, func(i, j int) bool {
		wi, wj := weight(order[i]), weight(order[j])
		if wi != wj {
			return wi > wj
		}
		return order[i] < order[j]
	})
	loads := make([]float64, k)
	for _, t := range order {
		best := 0
		for p := 1; p < k; p++ {
			if loads[p] < loads[best] {
				best = p
			}
		}
		tp.Assign[t] = best
		loads[best] += weight(t)
	}
	return tp
}

// CoOccurTerms implements the co-occurrence-aware refinement of Lucchese
// et al.: like bin-packing, but among the under-loaded bins the one with
// the highest query co-occurrence affinity to the candidate term wins,
// so terms that appear together in queries land on the same server and
// fewer servers participate per query. slack bounds how far above the
// ideal average a bin may grow (e.g. 0.2 = 20%).
func CoOccurTerms(terms []string, weight func(string) float64, co map[[2]string]int, k int, slack float64) TermPartition {
	tp := TermPartition{K: k, Assign: make(map[string]int, len(terms))}
	order := append([]string(nil), terms...)
	sort.Slice(order, func(i, j int) bool {
		wi, wj := weight(order[i]), weight(order[j])
		if wi != wj {
			return wi > wj
		}
		return order[i] < order[j]
	})
	var totalW float64
	for _, t := range order {
		totalW += weight(t)
	}
	cap := totalW / float64(k) * (1 + slack)

	// Affinity adjacency: term -> co-occurring term -> count.
	adj := make(map[string]map[string]int)
	for pair, c := range co {
		a, b := pair[0], pair[1]
		if adj[a] == nil {
			adj[a] = make(map[string]int)
		}
		if adj[b] == nil {
			adj[b] = make(map[string]int)
		}
		adj[a][b] += c
		adj[b][a] += c
	}

	loads := make([]float64, k)
	for _, t := range order {
		w := weight(t)
		// Affinity of t to each bin via already-placed co-occurring terms.
		aff := make([]float64, k)
		for other, c := range adj[t] {
			if p, ok := tp.Assign[other]; ok {
				aff[p] += float64(c)
			}
		}
		best, bestScore := -1, -1.0
		lightest, lightLoad := 0, loads[0]
		for p := 0; p < k; p++ {
			if loads[p] < lightLoad {
				lightest, lightLoad = p, loads[p]
			}
			if loads[p]+w > cap {
				continue
			}
			score := aff[p]
			if best == -1 || score > bestScore || (score == bestScore && loads[p] < loads[best]) {
				best, bestScore = p, score
			}
		}
		if best == -1 {
			best = lightest // every bin over cap: fall back to lightest
		}
		tp.Assign[t] = best
		loads[best] += w
	}
	return tp
}

// AvgPartsPerQuery measures, over a stream of queries (term slices), the
// mean number of partitions contacted — the efficiency objective of
// co-occurrence-aware term partitioning.
func (tp *TermPartition) AvgPartsPerQuery(queries [][]string) float64 {
	if len(queries) == 0 {
		return 0
	}
	total := 0
	for _, q := range queries {
		total += len(tp.PartsOf(q))
	}
	return float64(total) / float64(len(queries))
}
