// Package faultsim is the deterministic fault-injection and latency-
// simulation layer under the query path's robustness policy: it wraps
// partition/site processor calls with injectable behaviors — crash
// (silent, detected only by timeout), flaky (probabilistic immediate
// error), slow (straggler latency drawn from a log-normal), and
// partition-wide outage windows keyed by the engine's query tick.
//
// Determinism is the design constraint everything else bends around.
// An Outcome is a pure function of (seed, tick, unit, replica, attempt):
// the decision RNG is re-derived from a hash of those coordinates
// (internal/randx over a splitmix64-mixed seed), never drawn from a
// shared stream. Concurrent brokers at any worker count therefore see
// byte-identical fault schedules, and a fixed seed replays the exact
// same failure history run after run.
package faultsim

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"dwr/internal/randx"
)

// ErrInjected is the root of every injected failure; inspect with
// errors.Is. The concrete error says which unit failed and how.
var ErrInjected = errors.New("faultsim: injected fault")

// Spec configures the fault behavior of one unit (a partition server, a
// pipeline term server, or a site), or of one specific replica of it.
// The zero Spec is a perfectly healthy server.
type Spec struct {
	// Crash makes every call fail silently: no error reply, no answer.
	// The caller only learns via its attempt timeout.
	Crash bool
	// FlakyP is the probability a call returns an immediate error reply
	// (connection reset, over-capacity rejection). Each attempt draws
	// independently, so retries against the same replica can succeed.
	FlakyP float64
	// SlowP is the probability a call straggles: it still succeeds but
	// only after an extra log-normal delay.
	SlowP float64
	// SlowMeanMs locates the straggler delay distribution: the extra
	// latency is LogNormal(ln(SlowMeanMs), SlowSigma) milliseconds.
	SlowMeanMs float64
	// SlowSigma is the log-normal scale (0 picks 0.5).
	SlowSigma float64
}

// healthy reports whether the spec never injects anything.
func (s Spec) healthy() bool {
	return !s.Crash && s.FlakyP <= 0 && s.SlowP <= 0
}

// Window is a scheduled outage: the covered calls fail silently while
// From <= tick < To. Unit -1 covers every unit, Replica -1 every
// replica — so {Unit: 3, Replica: -1} is a partition-wide outage of
// partition 3 (all its replicas), the cluster-maintenance shape.
type Window struct {
	Unit    int // -1 = every unit
	Replica int // -1 = every replica
	From    int64
	To      int64 // exclusive
}

func (w Window) covers(tick int64, unit, replica int) bool {
	if tick < w.From || tick >= w.To {
		return false
	}
	if w.Unit >= 0 && w.Unit != unit {
		return false
	}
	if w.Replica >= 0 && w.Replica != replica {
		return false
	}
	return true
}

// Outcome is the simulated fate of one processor call attempt.
type Outcome struct {
	// Err is non-nil when the call failed (wraps ErrInjected).
	Err error
	// Silent marks a failure that produced no reply: the caller pays its
	// attempt timeout to detect it. False failures are error replies that
	// arrive at normal network speed.
	Silent bool
	// ExtraMs is straggler latency added to a successful call.
	ExtraMs float64
}

// Stats counts injected behaviors since construction.
type Stats struct {
	Calls   int64 // outcomes decided
	Crashes int64 // silent failures from Crash specs
	Flaky   int64 // immediate error replies
	Slow    int64 // straggler delays injected
	Outages int64 // silent failures from windows
}

// Injector decides call outcomes for a set of units. Spec changes are
// guarded and may be made between queries (e.g. an example failing a
// site mid-run); Outcome itself is lock-light and safe for concurrent
// brokers.
type Injector struct {
	seed int64

	mu      sync.RWMutex
	def     Spec
	units   map[int]Spec
	reps    map[[2]int]Spec
	windows []Window

	calls   atomic.Int64
	crashes atomic.Int64
	flaky   atomic.Int64
	slow    atomic.Int64
	outages atomic.Int64
}

// New creates an injector whose whole fault schedule is a deterministic
// function of seed.
func New(seed int64) *Injector {
	return &Injector{
		seed:  seed,
		units: make(map[int]Spec),
		reps:  make(map[[2]int]Spec),
	}
}

// Default sets the spec applied to every unit without a more specific
// override. Returns the injector for chaining.
func (in *Injector) Default(s Spec) *Injector {
	in.mu.Lock()
	in.def = s
	in.mu.Unlock()
	return in
}

// Unit overrides the spec of one unit (all its replicas).
func (in *Injector) Unit(u int, s Spec) *Injector {
	in.mu.Lock()
	in.units[u] = s
	in.mu.Unlock()
	return in
}

// UnitReplica overrides the spec of one specific replica of a unit —
// the shape replica-failover tests want: crash replica 0 of partition 2
// and watch retries land on replica 1.
func (in *Injector) UnitReplica(u, r int, s Spec) *Injector {
	in.mu.Lock()
	in.reps[[2]int{u, r}] = s
	in.mu.Unlock()
	return in
}

// Window schedules an outage. Returns the injector for chaining.
func (in *Injector) Window(w Window) *Injector {
	in.mu.Lock()
	in.windows = append(in.windows, w)
	in.mu.Unlock()
	return in
}

// ClearUnit removes unit- and replica-level overrides for u (the unit
// falls back to the default spec) — "the server was replaced".
func (in *Injector) ClearUnit(u int) {
	in.mu.Lock()
	delete(in.units, u)
	for k := range in.reps {
		if k[0] == u {
			delete(in.reps, k)
		}
	}
	in.mu.Unlock()
}

// spec resolves the effective spec for (unit, replica): replica override
// first, then unit override, then default.
func (in *Injector) spec(unit, replica int) Spec {
	if s, ok := in.reps[[2]int{unit, replica}]; ok {
		return s
	}
	if s, ok := in.units[unit]; ok {
		return s
	}
	return in.def
}

// Outcome decides the fate of attempt `attempt` of a call to the given
// replica of the given unit at query tick `tick`. The result depends
// only on the injector's configuration and (seed, tick, unit, replica,
// attempt) — never on call order or interleaving.
func (in *Injector) Outcome(tick int64, unit, replica, attempt int) Outcome {
	in.calls.Add(1)
	in.mu.RLock()
	s := in.spec(unit, replica)
	var windowed bool
	for _, w := range in.windows {
		if w.covers(tick, unit, replica) {
			windowed = true
			break
		}
	}
	in.mu.RUnlock()

	if windowed {
		in.outages.Add(1)
		return Outcome{
			Err:    fmt.Errorf("faultsim: unit %d replica %d in outage window at tick %d: %w", unit, replica, tick, ErrInjected),
			Silent: true,
		}
	}
	if s.Crash {
		in.crashes.Add(1)
		return Outcome{
			Err:    fmt.Errorf("faultsim: unit %d replica %d crashed: %w", unit, replica, ErrInjected),
			Silent: true,
		}
	}
	if s.healthy() {
		return Outcome{}
	}
	rng := randx.New(mix(in.seed, tick, unit, replica, attempt))
	if s.FlakyP > 0 && randx.Bernoulli(rng, s.FlakyP) {
		in.flaky.Add(1)
		return Outcome{
			Err: fmt.Errorf("faultsim: unit %d replica %d flaky error: %w", unit, replica, ErrInjected),
		}
	}
	if s.SlowP > 0 && randx.Bernoulli(rng, s.SlowP) {
		sigma := s.SlowSigma
		if sigma <= 0 {
			sigma = 0.5
		}
		mean := s.SlowMeanMs
		if mean <= 0 {
			mean = 10
		}
		in.slow.Add(1)
		return Outcome{ExtraMs: randx.LogNormal(rng, math.Log(mean), sigma)}
	}
	return Outcome{}
}

// DownUnits lists units in [0, units) that cannot answer at tick no
// matter which of their `replicas` replicas is tried: every replica is
// crashed, or an active window covers them all. Engines surface this as
// the health view of injected topology damage.
func (in *Injector) DownUnits(tick int64, units, replicas int) []int {
	if replicas < 1 {
		replicas = 1
	}
	in.mu.RLock()
	defer in.mu.RUnlock()
	var down []int
	for u := 0; u < units; u++ {
		dead := true
		for r := 0; r < replicas && dead; r++ {
			s := in.spec(u, r)
			if s.Crash {
				continue
			}
			covered := false
			for _, w := range in.windows {
				if w.covers(tick, u, r) {
					covered = true
					break
				}
			}
			if !covered {
				dead = false
			}
		}
		if dead {
			down = append(down, u)
		}
	}
	sort.Ints(down)
	return down
}

// Stats returns cumulative injection counts.
func (in *Injector) Stats() Stats {
	return Stats{
		Calls:   in.calls.Load(),
		Crashes: in.crashes.Load(),
		Flaky:   in.flaky.Load(),
		Slow:    in.slow.Load(),
		Outages: in.outages.Load(),
	}
}

// mix collapses the call coordinates into one RNG seed with two rounds
// of splitmix64 — enough diffusion that adjacent ticks, units, replicas,
// and attempts draw independent-looking streams.
func mix(seed, tick int64, unit, replica, attempt int) int64 {
	x := uint64(seed)
	x ^= splitmix64(uint64(tick) + 0x9e3779b97f4a7c15)
	x ^= splitmix64(uint64(unit)<<32 | uint64(uint32(replica)))
	x ^= splitmix64(uint64(attempt) + 0xbf58476d1ce4e5b9)
	return int64(splitmix64(x))
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
