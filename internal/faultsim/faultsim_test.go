package faultsim

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

func TestOutcomeDeterministic(t *testing.T) {
	a := New(42).Default(Spec{FlakyP: 0.3, SlowP: 0.2, SlowMeanMs: 20})
	b := New(42).Default(Spec{FlakyP: 0.3, SlowP: 0.2, SlowMeanMs: 20})
	for tick := int64(0); tick < 50; tick++ {
		for u := 0; u < 4; u++ {
			for r := 0; r < 2; r++ {
				for att := 0; att < 3; att++ {
					oa := a.Outcome(tick, u, r, att)
					ob := b.Outcome(tick, u, r, att)
					if fmt.Sprint(oa) != fmt.Sprint(ob) {
						t.Fatalf("outcome diverged at tick=%d u=%d r=%d a=%d: %v vs %v",
							tick, u, r, att, oa, ob)
					}
				}
			}
		}
	}
}

func TestOutcomeOrderIndependent(t *testing.T) {
	// The same coordinates give the same outcome regardless of what was
	// asked in between — the property that makes parallel brokers
	// byte-identical to serial ones.
	in := New(7).Default(Spec{FlakyP: 0.5, SlowP: 0.3, SlowMeanMs: 5})
	first := in.Outcome(9, 2, 1, 0)
	for i := 0; i < 100; i++ {
		in.Outcome(int64(i), i%3, i%2, i%4)
	}
	again := in.Outcome(9, 2, 1, 0)
	if fmt.Sprint(first) != fmt.Sprint(again) {
		t.Fatalf("outcome changed with interleaved calls: %v vs %v", first, again)
	}
}

func TestOutcomeConcurrentSafe(t *testing.T) {
	in := New(3).Default(Spec{FlakyP: 0.2})
	var wg sync.WaitGroup
	results := make([][]string, 8)
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for tick := int64(0); tick < 200; tick++ {
				results[w] = append(results[w], fmt.Sprint(in.Outcome(tick, 0, 0, 0)))
			}
		}()
	}
	wg.Wait()
	for w := 1; w < 8; w++ {
		for i := range results[0] {
			if results[w][i] != results[0][i] {
				t.Fatalf("worker %d saw a different schedule at %d", w, i)
			}
		}
	}
}

func TestSeedChangesSchedule(t *testing.T) {
	a := New(1).Default(Spec{FlakyP: 0.5})
	b := New(2).Default(Spec{FlakyP: 0.5})
	same := 0
	const n = 200
	for tick := int64(0); tick < n; tick++ {
		oa := a.Outcome(tick, 0, 0, 0)
		ob := b.Outcome(tick, 0, 0, 0)
		if (oa.Err == nil) == (ob.Err == nil) {
			same++
		}
	}
	if same == n {
		t.Fatal("different seeds produced an identical fault schedule")
	}
}

func TestCrashAndFlakyAreErrInjected(t *testing.T) {
	in := New(1).Unit(0, Spec{Crash: true}).Unit(1, Spec{FlakyP: 1})
	crash := in.Outcome(0, 0, 0, 0)
	if !errors.Is(crash.Err, ErrInjected) || !crash.Silent {
		t.Fatalf("crash outcome %v not a silent ErrInjected", crash)
	}
	flaky := in.Outcome(0, 1, 0, 0)
	if !errors.Is(flaky.Err, ErrInjected) || flaky.Silent {
		t.Fatalf("flaky outcome %v not a loud ErrInjected", flaky)
	}
	healthy := in.Outcome(0, 2, 0, 0)
	if healthy.Err != nil || healthy.ExtraMs != 0 {
		t.Fatalf("unconfigured unit not healthy: %v", healthy)
	}
}

func TestReplicaOverrideNarrowerThanUnit(t *testing.T) {
	in := New(1).Unit(3, Spec{Crash: true}).UnitReplica(3, 1, Spec{})
	if out := in.Outcome(0, 3, 0, 0); out.Err == nil {
		t.Fatal("replica 0 of crashed unit answered")
	}
	if out := in.Outcome(0, 3, 1, 0); out.Err != nil {
		t.Fatalf("healthy replica override did not win: %v", out)
	}
}

func TestWindowCoversTicksAndUnits(t *testing.T) {
	in := New(1).Window(Window{Unit: 2, Replica: -1, From: 10, To: 20})
	if out := in.Outcome(9, 2, 0, 0); out.Err != nil {
		t.Fatal("window fired before From")
	}
	for tick := int64(10); tick < 20; tick++ {
		for r := 0; r < 3; r++ {
			out := in.Outcome(tick, 2, r, 0)
			if !errors.Is(out.Err, ErrInjected) || !out.Silent {
				t.Fatalf("tick %d replica %d not silenced by window: %v", tick, r, out)
			}
		}
		if out := in.Outcome(tick, 1, 0, 0); out.Err != nil {
			t.Fatal("window leaked onto another unit")
		}
	}
	if out := in.Outcome(20, 2, 0, 0); out.Err != nil {
		t.Fatal("window fired at To (exclusive bound)")
	}
}

func TestGlobalWindow(t *testing.T) {
	in := New(1).Window(Window{Unit: -1, Replica: -1, From: 5, To: 6})
	for u := 0; u < 4; u++ {
		if out := in.Outcome(5, u, 0, 0); out.Err == nil {
			t.Fatalf("global window missed unit %d", u)
		}
	}
}

func TestSlowAddsLatencyOnly(t *testing.T) {
	in := New(11).Default(Spec{SlowP: 1, SlowMeanMs: 30})
	seen := false
	for tick := int64(0); tick < 20; tick++ {
		out := in.Outcome(tick, 0, 0, 0)
		if out.Err != nil {
			t.Fatalf("slow spec produced an error: %v", out)
		}
		if out.ExtraMs > 0 {
			seen = true
		}
	}
	if !seen {
		t.Fatal("SlowP=1 never injected latency")
	}
}

func TestDownUnits(t *testing.T) {
	in := New(1).
		Unit(0, Spec{Crash: true}).
		UnitReplica(2, 0, Spec{Crash: true}). // replica 1 still alive
		Window(Window{Unit: 3, Replica: -1, From: 0, To: 100})
	down := in.DownUnits(50, 5, 2)
	if fmt.Sprint(down) != "[0 3]" {
		t.Fatalf("DownUnits = %v, want [0 3]", down)
	}
	// With a single replica, the replica-level crash takes unit 2 down
	// too.
	down = in.DownUnits(50, 5, 1)
	if fmt.Sprint(down) != "[0 2 3]" {
		t.Fatalf("DownUnits(replicas=1) = %v, want [0 2 3]", down)
	}
	// Outside the window, unit 3 recovers.
	down = in.DownUnits(200, 5, 2)
	if fmt.Sprint(down) != "[0]" {
		t.Fatalf("DownUnits past window = %v, want [0]", down)
	}
}

func TestStatsCount(t *testing.T) {
	in := New(1).
		Unit(0, Spec{Crash: true}).
		Unit(1, Spec{FlakyP: 1}).
		Window(Window{Unit: 2, Replica: -1, From: 0, To: 10})
	in.Outcome(0, 0, 0, 0)
	in.Outcome(0, 1, 0, 0)
	in.Outcome(0, 2, 0, 0)
	in.Outcome(0, 3, 0, 0)
	st := in.Stats()
	if st.Calls != 4 || st.Crashes != 1 || st.Flaky != 1 || st.Outages != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestClearUnitRestoresDefault(t *testing.T) {
	in := New(1).Unit(0, Spec{Crash: true}).UnitReplica(0, 1, Spec{Crash: true})
	if out := in.Outcome(0, 0, 0, 0); out.Err == nil {
		t.Fatal("crash override inactive")
	}
	in.ClearUnit(0)
	if out := in.Outcome(0, 0, 0, 0); out.Err != nil {
		t.Fatalf("ClearUnit left unit broken: %v", out)
	}
	if out := in.Outcome(0, 0, 1, 0); out.Err != nil {
		t.Fatalf("ClearUnit left replica override: %v", out)
	}
}
