package simweb

import (
	"fmt"
	"math/rand"
	"sort"

	"dwr/internal/randx"
)

// Config controls the synthetic Web generator. The zero value is not
// usable; start from DefaultConfig and override fields.
type Config struct {
	Seed int64

	Hosts          int     // number of Web servers
	MeanPagesPower float64 // Pareto shape for pages-per-host (smaller = heavier tail)
	MinPages       int     // minimum pages per host
	MaxPages       int     // cap on pages per host

	VocabSize int     // terms per language
	Topics    int     // topical bands in the vocabulary
	TopicBias float64 // probability a term draw is topical rather than global
	ZipfS     float64 // exponent of the global term distribution

	MinWords int // words per page, lower bound
	MaxWords int // words per page, upper bound

	OutDegreeMean float64 // mean links per page
	LinkLocality  float64 // probability a link targets the same host (paper §3: "most of the links ... point to other pages in the same server")

	Regions   int      // geographic regions hosts are spread over
	Languages []string // language codes; hosts are monolingual

	// Server behaviour (paper §3, external factors).
	FlakyHostFrac     float64 // fraction of hosts that fail requests transiently
	FlakyFailProb     float64 // per-request failure probability on flaky hosts
	SlowHostFrac      float64 // fraction of hosts with 10× latency
	BaseLatencyMs     float64 // median server response latency
	MalformedFrac     float64 // fraction of hosts emitting broken HTML
	NonConformingFrac float64 // fraction of hosts ignoring If-Modified-Since
	RobotsFrac        float64 // fraction of hosts with a /private disallow rule
	PrivateFrac       float64 // fraction of a host's pages under /private when robots apply
	SitemapFrac       float64 // fraction of hosts exposing a sitemap

	MeanChangeRate float64 // mean per-day page change probability
}

// DefaultConfig returns a laptop-scale configuration that preserves the
// Web's distributional shape: heavy-tailed host sizes, power-law
// in-degree, Zipf terms, and a minority of misbehaving servers.
func DefaultConfig() Config {
	return Config{
		Seed:              1,
		Hosts:             200,
		MeanPagesPower:    1.4,
		MinPages:          2,
		MaxPages:          400,
		VocabSize:         8000,
		Topics:            16,
		TopicBias:         0.5,
		ZipfS:             1.0,
		MinWords:          60,
		MaxWords:          400,
		OutDegreeMean:     8,
		LinkLocality:      0.75,
		Regions:           3,
		Languages:         []string{"en", "es", "it"},
		FlakyHostFrac:     0.08,
		FlakyFailProb:     0.3,
		SlowHostFrac:      0.05,
		BaseLatencyMs:     40,
		MalformedFrac:     0.15,
		NonConformingFrac: 0.10,
		RobotsFrac:        0.3,
		PrivateFrac:       0.1,
		SitemapFrac:       0.25,
		MeanChangeRate:    0.02,
	}
}

// Host is one simulated Web server.
type Host struct {
	ID            int
	Name          string
	Region        int
	Lang          string
	Pages         []int // global page IDs, in path order
	Flaky         bool
	Slow          bool
	Malformed     bool
	NonConforming bool
	HasRobots     bool
	HasSitemap    bool
	LatencyMs     float64 // median response latency
}

// Page is one simulated Web page. Terms are stored as dense IDs into the
// host language's vocabulary; HTML is rendered on demand by Fetch.
type Page struct {
	ID         int
	Host       int
	Path       string
	Topic      int
	Private    bool    // under the robots-disallowed prefix
	Terms      []int32 // term IDs in document order
	Links      []int   // global page IDs this page links to
	InDegree   int
	ChangeRate float64 // per-day probability of modification
}

// Web is a fully generated synthetic Web.
type Web struct {
	Config Config
	Hosts  []*Host
	Pages  []*Page
	Vocabs map[string]*Vocabulary
	Topics *TopicModel
}

// New generates a Web from cfg. Generation is deterministic in cfg.Seed.
func New(cfg Config) *Web {
	rng := randx.New(cfg.Seed)
	w := &Web{Config: cfg, Vocabs: make(map[string]*Vocabulary)}
	if len(cfg.Languages) == 0 {
		cfg.Languages = []string{"en"}
		w.Config.Languages = cfg.Languages
	}
	for _, lang := range cfg.Languages {
		w.Vocabs[lang] = NewVocabulary(lang, cfg.VocabSize)
	}
	w.Topics = NewTopicModel(cfg.Topics, cfg.VocabSize)

	w.generateHosts(rng)
	w.generatePages(rng)
	w.generateLinks(rng)
	return w
}

func (w *Web) generateHosts(rng *rand.Rand) {
	cfg := w.Config
	w.Hosts = make([]*Host, cfg.Hosts)
	for i := range w.Hosts {
		lat := cfg.BaseLatencyMs * randx.LogNormal(rng, 0, 0.4)
		h := &Host{
			ID:            i,
			Name:          fmt.Sprintf("h%04d.example", i),
			Region:        rng.Intn(max(1, cfg.Regions)),
			Lang:          cfg.Languages[rng.Intn(len(cfg.Languages))],
			Flaky:         randx.Bernoulli(rng, cfg.FlakyHostFrac),
			Slow:          randx.Bernoulli(rng, cfg.SlowHostFrac),
			Malformed:     randx.Bernoulli(rng, cfg.MalformedFrac),
			NonConforming: randx.Bernoulli(rng, cfg.NonConformingFrac),
			HasRobots:     randx.Bernoulli(rng, cfg.RobotsFrac),
			HasSitemap:    randx.Bernoulli(rng, cfg.SitemapFrac),
			LatencyMs:     lat,
		}
		if h.Slow {
			h.LatencyMs *= 10
		}
		w.Hosts[i] = h
	}
}

func (w *Web) generatePages(rng *rand.Rand) {
	cfg := w.Config
	global := randx.NewZipf(cfg.VocabSize, cfg.ZipfS)
	bandWidth := cfg.VocabSize / max(1, cfg.Topics)
	band := randx.NewZipf(max(1, bandWidth), cfg.ZipfS)

	for _, h := range w.Hosts {
		n := int(randx.BoundedPareto(rng, float64(cfg.MinPages), cfg.MeanPagesPower, float64(cfg.MaxPages)))
		// A host leans toward one topic; pages mostly share it.
		homeTopic := rng.Intn(max(1, cfg.Topics))
		for j := 0; j < n; j++ {
			topic := homeTopic
			if rng.Float64() < 0.2 {
				topic = rng.Intn(max(1, cfg.Topics))
			}
			private := h.HasRobots && randx.Bernoulli(rng, cfg.PrivateFrac)
			path := fmt.Sprintf("/p%d.html", j)
			if private {
				path = fmt.Sprintf("/private/p%d.html", j)
			}
			nWords := cfg.MinWords + rng.Intn(cfg.MaxWords-cfg.MinWords+1)
			terms := make([]int32, nWords)
			for k := range terms {
				terms[k] = int32(w.Topics.Draw(rng, topic, global, band, cfg.TopicBias))
			}
			p := &Page{
				ID:         len(w.Pages),
				Host:       h.ID,
				Path:       path,
				Topic:      topic,
				Private:    private,
				Terms:      terms,
				ChangeRate: randx.Exp(rng, cfg.MeanChangeRate),
			}
			if p.ChangeRate > 1 {
				p.ChangeRate = 1
			}
			h.Pages = append(h.Pages, p.ID)
			w.Pages = append(w.Pages, p)
		}
	}
}

// generateLinks wires the link graph with a copy model: each link target
// is, with probability LinkLocality, a uniform page on the same host;
// otherwise, half the time a uniform random page and half the time the
// target of an existing link (preferential attachment), which yields the
// power-law in-degree distribution the paper's URL-exchange optimization
// relies on.
func (w *Web) generateLinks(rng *rand.Rand) {
	cfg := w.Config
	if len(w.Pages) == 0 {
		return
	}
	var endpoints []int // multiset of link targets seen so far
	for _, p := range w.Pages {
		out := int(randx.Exp(rng, cfg.OutDegreeMean))
		if out < 1 {
			out = 1
		}
		host := w.Hosts[p.Host]
		for l := 0; l < out; l++ {
			var target int
			if rng.Float64() < cfg.LinkLocality && len(host.Pages) > 1 {
				// Intra-host: sites link their front page heavily
				// (navigation bars), so skew local targets toward it.
				if rng.Float64() < 0.4 {
					target = host.Pages[0]
				} else {
					target = host.Pages[rng.Intn(len(host.Pages))]
				}
			} else if len(endpoints) > 0 && rng.Float64() < 0.8 {
				target = endpoints[rng.Intn(len(endpoints))]
			} else {
				target = rng.Intn(len(w.Pages))
			}
			if target == p.ID {
				continue
			}
			p.Links = append(p.Links, target)
			w.Pages[target].InDegree++
			endpoints = append(endpoints, target)
		}
	}
}

// URL returns the absolute URL of a page.
func (w *Web) URL(pageID int) string {
	p := w.Pages[pageID]
	return "http://" + w.Hosts[p.Host].Name + p.Path
}

// PageByURL resolves an absolute URL to a page ID, or -1 if the URL does
// not exist on this Web (a dangling or malformed link).
func (w *Web) PageByURL(url string) int {
	host, path, ok := SplitURL(url)
	if !ok {
		return -1
	}
	h := w.HostByName(host)
	if h == nil {
		return -1
	}
	for _, pid := range h.Pages {
		if w.Pages[pid].Path == path {
			return pid
		}
	}
	return -1
}

// HostByName resolves a host name, or nil if unknown.
func (w *Web) HostByName(name string) *Host {
	// Host names encode their ID; parse rather than scan.
	var id int
	if _, err := fmt.Sscanf(name, "h%d.example", &id); err != nil || id < 0 || id >= len(w.Hosts) {
		return nil
	}
	if w.Hosts[id].Name != name {
		return nil
	}
	return w.Hosts[id]
}

// SplitURL splits an absolute http URL into host and path. ok is false
// for URLs this Web cannot serve.
func SplitURL(url string) (host, path string, ok bool) {
	const pfx = "http://"
	if len(url) < len(pfx) || url[:len(pfx)] != pfx {
		return "", "", false
	}
	rest := url[len(pfx):]
	slash := -1
	for i := 0; i < len(rest); i++ {
		if rest[i] == '/' {
			slash = i
			break
		}
	}
	if slash < 0 {
		return rest, "/", true
	}
	return rest[:slash], rest[slash:], true
}

// MostCited returns the n page IDs with the highest in-degree, the
// "most cited URLs in the collection" the paper suggests seeding agents
// with to cut URL-exchange traffic.
func (w *Web) MostCited(n int) []int {
	ids := make([]int, len(w.Pages))
	for i := range ids {
		ids[i] = i
	}
	sort.Slice(ids, func(a, b int) bool {
		if w.Pages[ids[a]].InDegree != w.Pages[ids[b]].InDegree {
			return w.Pages[ids[a]].InDegree > w.Pages[ids[b]].InDegree
		}
		return ids[a] < ids[b]
	})
	if n > len(ids) {
		n = len(ids)
	}
	return ids[:n]
}

// CrawlablePages returns the number of pages reachable by a compliant
// crawler (i.e. not robots-disallowed).
func (w *Web) CrawlablePages() int {
	n := 0
	for _, p := range w.Pages {
		if !p.Private {
			n++
		}
	}
	return n
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
