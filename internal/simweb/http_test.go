package simweb

import (
	"net/http/httptest"
	"strings"
	"testing"

	"dwr/internal/textproc"
)

func httpFixture(t *testing.T) (*Web, *httptest.Server) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Hosts = 40
	cfg.MaxPages = 30
	cfg.VocabSize = 1200
	cfg.FlakyHostFrac = 0 // deterministic transport tests
	w := New(cfg)
	srv := httptest.NewServer(NewHTTPHandler(w, 5, 1))
	t.Cleanup(srv.Close)
	return w, srv
}

func TestHTTPServesSameContentAsFetch(t *testing.T) {
	w, srv := httpFixture(t)
	client := srv.Client()
	checked := 0
	for pid := 0; pid < len(w.Pages) && checked < 25; pid += 5 {
		url := w.URL(pid)
		status, body, lastMod, err := HTTPGet(client, srv.URL, url, -1)
		if err != nil {
			t.Fatal(err)
		}
		if status != 200 {
			t.Fatalf("GET %s over HTTP = %d", url, status)
		}
		wantMod := w.LastModified(pid, 5)
		if lastMod != wantMod {
			t.Fatalf("%s last-modified %d over HTTP, want %d", url, lastMod, wantMod)
		}
		if want := w.RenderHTML(pid, wantMod); body != want {
			t.Fatalf("%s body differs over HTTP (%d vs %d bytes)", url, len(body), len(want))
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("nothing checked")
	}
}

func TestHTTPConditionalRequests(t *testing.T) {
	w, srv := httpFixture(t)
	client := srv.Client()
	var pid int = -1
	for _, h := range w.Hosts {
		if !h.NonConforming && len(h.Pages) > 0 {
			pid = h.Pages[0]
			break
		}
	}
	if pid < 0 {
		t.Skip("no conforming host")
	}
	url := w.URL(pid)
	lastMod := w.LastModified(pid, 5)
	status, body, _, err := HTTPGet(client, srv.URL, url, lastMod)
	if err != nil {
		t.Fatal(err)
	}
	if status != 304 || body != "" {
		t.Fatalf("conditional GET = %d with %d body bytes, want 304 empty", status, len(body))
	}
}

func TestHTTPNonConformingIgnoresHeader(t *testing.T) {
	w, srv := httpFixture(t)
	client := srv.Client()
	for _, h := range w.Hosts {
		if h.NonConforming && len(h.Pages) > 0 {
			url := w.URL(h.Pages[0])
			status, body, _, err := HTTPGet(client, srv.URL, url, 5)
			if err != nil {
				t.Fatal(err)
			}
			if status != 200 || body == "" {
				t.Fatalf("non-conforming host answered %d over HTTP; must ignore If-Modified-Since", status)
			}
			return
		}
	}
	t.Skip("no non-conforming host")
}

func TestHTTPRobotsAndSitemap(t *testing.T) {
	w, srv := httpFixture(t)
	client := srv.Client()
	for _, h := range w.Hosts {
		if h.HasRobots {
			status, body, _, err := HTTPGet(client, srv.URL, "http://"+h.Name+"/robots.txt", -1)
			if err != nil || status != 200 || !strings.Contains(body, "Disallow") {
				t.Fatalf("robots over HTTP: %d %v %q", status, err, body)
			}
			break
		}
	}
	for _, h := range w.Hosts {
		if h.HasSitemap {
			status, body, _, err := HTTPGet(client, srv.URL, "http://"+h.Name+"/sitemap.txt", -1)
			if err != nil || status != 200 || !strings.Contains(body, "lastmod=") {
				t.Fatalf("sitemap over HTTP: %d %v", status, err)
			}
			break
		}
	}
}

func TestHTTPUnknownHostAndPage(t *testing.T) {
	_, srv := httpFixture(t)
	client := srv.Client()
	status, _, _, err := HTTPGet(client, srv.URL, "http://nosuch.example/x.html", -1)
	if err != nil || status != 404 {
		t.Fatalf("unknown host = %d, %v", status, err)
	}
	w, _ := httpFixture(t)
	status, _, _, err = HTTPGet(client, srv.URL, "http://"+w.Hosts[0].Name+"/nosuch.html", -1)
	if err != nil || status != 404 {
		t.Fatalf("unknown page = %d, %v", status, err)
	}
}

// TestHTTPCrawlIntegration crawls a slice of the web over real HTTP —
// fetch, parse, follow links — and confirms it discovers the same pages
// the in-process fetch path reaches.
func TestHTTPCrawlIntegration(t *testing.T) {
	w, srv := httpFixture(t)
	client := srv.Client()
	// BFS over real HTTP from every host's front page.
	var frontier []string
	for _, h := range w.Hosts {
		if len(h.Pages) > 0 {
			frontier = append(frontier, w.URL(h.Pages[0]))
		}
	}
	seen := map[string]bool{}
	fetched := 0
	for len(frontier) > 0 && fetched < 400 {
		url := frontier[0]
		frontier = frontier[1:]
		if seen[url] {
			continue
		}
		seen[url] = true
		status, body, _, err := HTTPGet(client, srv.URL, url, -1)
		if err != nil {
			t.Fatal(err)
		}
		if status != 200 {
			continue
		}
		fetched++
		doc := textproc.ParseHTML(body)
		for _, href := range doc.Links {
			abs := ResolveLink(url, href)
			if abs != "" && !seen[abs] {
				frontier = append(frontier, abs)
			}
		}
	}
	if fetched < 100 {
		t.Fatalf("HTTP crawl fetched only %d pages", fetched)
	}
}
