package simweb

import (
	"fmt"
	"math/rand"
	"strings"

	"dwr/internal/randx"
)

// HTTP-ish status codes the simulated servers return.
const (
	StatusOK          = 200
	StatusNotModified = 304
	StatusNotFound    = 404
	StatusUnavailable = 503
)

// FetchResult is the outcome of fetching one URL on a given virtual day.
type FetchResult struct {
	Status       int
	HTML         string
	LastModified int     // virtual day of the page's last change
	LatencyMs    float64 // simulated server response time
}

// Fetch serves url as the Web server would on virtual day `day`. If
// ifModifiedSince >= 0 and the page has not changed since that day, a
// conforming host answers 304 with no body; a non-conforming host ignores
// the header (a real-world failure mode Section 3 calls out). Flaky hosts
// fail transiently with 503. rng drives the transient behaviour only —
// page content is deterministic.
func (w *Web) Fetch(rng *rand.Rand, url string, day, ifModifiedSince int) FetchResult {
	host, path, ok := SplitURL(url)
	if !ok {
		return FetchResult{Status: StatusNotFound}
	}
	h := w.HostByName(host)
	if h == nil {
		return FetchResult{Status: StatusNotFound}
	}
	latency := h.LatencyMs * randx.LogNormal(rng, 0, 0.3)
	if h.Flaky && randx.Bernoulli(rng, w.Config.FlakyFailProb) {
		return FetchResult{Status: StatusUnavailable, LatencyMs: latency * 3}
	}
	var page *Page
	for _, pid := range h.Pages {
		if w.Pages[pid].Path == path {
			page = w.Pages[pid]
			break
		}
	}
	if page == nil {
		return FetchResult{Status: StatusNotFound, LatencyMs: latency}
	}
	lastMod := w.LastModified(page.ID, day)
	if ifModifiedSince >= 0 && !h.NonConforming && lastMod <= ifModifiedSince {
		return FetchResult{Status: StatusNotModified, LastModified: lastMod, LatencyMs: latency * 0.3}
	}
	return FetchResult{
		Status:       StatusOK,
		HTML:         w.RenderHTML(page.ID, lastMod),
		LastModified: lastMod,
		LatencyMs:    latency,
	}
}

// LastModified returns the most recent virtual day ≤ day on which the
// page changed (0 = creation). The change process is a deterministic
// function of (pageID, day) so fetch needs no mutable state: the page
// changed on day d iff a hash of (pageID, d) falls below its ChangeRate.
func (w *Web) LastModified(pageID, day int) int {
	p := w.Pages[pageID]
	for d := day; d > 0; d-- {
		if pageChangedOn(pageID, d, p.ChangeRate) {
			return d
		}
	}
	return 0
}

// Changed reports whether the page changed strictly after day `since`
// and up to day `day`.
func (w *Web) Changed(pageID, since, day int) bool {
	return w.LastModified(pageID, day) > since
}

// pageChangedOn hashes (pageID, day) into [0,1) and compares with rate.
func pageChangedOn(pageID, day int, rate float64) bool {
	x := uint64(pageID)*0x9e3779b97f4a7c15 ^ uint64(day)*0xc2b2ae3d27d4eb4f
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	return float64(x>>11)/float64(1<<53) < rate
}

// RenderHTML renders a page's HTML for the given revision day. Hosts
// flagged Malformed emit the kinds of markup breakage Section 3 warns
// about: unclosed tags, unquoted attributes, bare ampersands, and a
// truncated final tag. The visible words and links are the same either
// way — a tolerant parser recovers everything.
func (w *Web) RenderHTML(pageID, revision int) string {
	p := w.Pages[pageID]
	h := w.Hosts[p.Host]
	vocab := w.Vocabs[h.Lang]
	var b strings.Builder
	b.Grow(len(p.Terms)*8 + len(p.Links)*40 + 256)

	title := fmt.Sprintf("%s %s rev%d", h.Name, p.Path, revision)
	if h.Malformed {
		b.WriteString("<html><head><title>")
		b.WriteString(title)
		// Malformed: title never closed, head never closed.
		b.WriteString("<body>")
	} else {
		b.WriteString("<html><head><title>")
		b.WriteString(title)
		b.WriteString("</title></head><body>")
	}
	b.WriteString("<h1>")
	b.WriteString(title)
	if !h.Malformed {
		b.WriteString("</h1>")
	}
	b.WriteString("<p>")
	for i, t := range p.Terms {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(vocab.Word(int(t)))
	}
	if h.Malformed {
		b.WriteString(" fish & chips &nbp; <p>next para never closed")
	} else {
		b.WriteString("</p>")
	}
	for i, target := range p.Links {
		tp := w.Pages[target]
		var href string
		if tp.Host == p.Host && i%2 == 0 {
			href = tp.Path // relative link, same server
		} else {
			href = "http://" + w.Hosts[tp.Host].Name + tp.Path
		}
		if h.Malformed && i%3 == 0 {
			fmt.Fprintf(&b, `<a href=%s>link %d`, href, i) // unquoted, unclosed
		} else {
			fmt.Fprintf(&b, `<a href="%s">link %d</a>`, href, i)
		}
	}
	if h.Malformed {
		b.WriteString("<div>trunc") // page ends mid-markup
	} else {
		b.WriteString("</body></html>")
	}
	return b.String()
}

// Robots returns the robots.txt body for a host ("" if the host serves
// none). Hosts with robots disallow the /private/ prefix.
func (w *Web) Robots(hostName string) string {
	h := w.HostByName(hostName)
	if h == nil || !h.HasRobots {
		return ""
	}
	return "User-agent: *\nDisallow: /private/\nCrawl-delay: 1\n"
}

// SitemapEntry is one URL in a host's sitemap, with its last-modified
// day and estimated change rate — the "server-crawler cooperation"
// standard (sitemaps.org) the paper describes.
type SitemapEntry struct {
	URL        string
	LastMod    int
	ChangeRate float64
}

// Sitemap returns the sitemap for a host on the given day, or nil if the
// host exposes none. Private pages are not listed.
func (w *Web) Sitemap(hostName string, day int) []SitemapEntry {
	h := w.HostByName(hostName)
	if h == nil || !h.HasSitemap {
		return nil
	}
	var out []SitemapEntry
	for _, pid := range h.Pages {
		p := w.Pages[pid]
		if p.Private {
			continue
		}
		out = append(out, SitemapEntry{
			URL:        w.URL(pid),
			LastMod:    w.LastModified(pid, day),
			ChangeRate: p.ChangeRate,
		})
	}
	return out
}

// ResolveLink resolves an href found on baseURL into an absolute URL,
// handling the relative paths the renderer emits. It returns "" for
// hrefs it cannot resolve.
func ResolveLink(baseURL, href string) string {
	if href == "" {
		return ""
	}
	if strings.HasPrefix(href, "http://") || strings.HasPrefix(href, "https://") {
		return href
	}
	host, _, ok := SplitURL(baseURL)
	if !ok {
		return ""
	}
	if strings.HasPrefix(href, "/") {
		return "http://" + host + href
	}
	// Path-relative: resolve against the base directory (always "/" here).
	return "http://" + host + "/" + href
}
