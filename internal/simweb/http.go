package simweb

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"dwr/internal/randx"
)

// HTTPHandler serves the synthetic Web over real HTTP, so the crawler
// stack can be exercised against actual sockets, headers, and status
// codes. The handler multiplexes every simulated host on one listener:
// the requested host is taken from the Host header (or an X-DWR-Host
// header, convenient with httptest clients).
//
// Section 3's protocol-violation warnings are honoured literally:
// non-conforming hosts ignore If-Modified-Since, and malformed hosts
// emit broken HTML — over a perfectly real HTTP connection.
type HTTPHandler struct {
	Web *Web
	// Day is the virtual day content is served for.
	Day int
	// seed drives the transient-failure behaviour.
	seed int64
}

// NewHTTPHandler creates a handler serving web's content as of the given
// virtual day.
func NewHTTPHandler(web *Web, day int, seed int64) *HTTPHandler {
	return &HTTPHandler{Web: web, Day: day, seed: seed}
}

// ServeHTTP implements http.Handler.
func (h *HTTPHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	hostName := r.Header.Get("X-DWR-Host")
	if hostName == "" {
		hostName = r.Host
		if i := strings.IndexByte(hostName, ':'); i >= 0 {
			hostName = hostName[:i]
		}
	}
	host := h.Web.HostByName(hostName)
	if host == nil {
		http.Error(w, "unknown host", http.StatusNotFound)
		return
	}

	// robots.txt is always served correctly — even broken servers tend
	// to get this right, and the politeness tests depend on it.
	if r.URL.Path == "/robots.txt" {
		body := h.Web.Robots(hostName)
		if body == "" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain")
		fmt.Fprint(w, body)
		return
	}
	if r.URL.Path == "/sitemap.txt" {
		entries := h.Web.Sitemap(hostName, h.Day)
		if entries == nil {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain")
		for _, e := range entries {
			fmt.Fprintf(w, "%s lastmod=%d\n", e.URL, e.LastMod)
		}
		return
	}

	// Conditional request handling mirrors Fetch: the virtual
	// Last-Modified day travels in a plain integer header.
	ims := -1
	if v := r.Header.Get("X-DWR-If-Modified-Since"); v != "" {
		if d, err := strconv.Atoi(v); err == nil {
			ims = d
		}
	}
	rng := randx.New(h.seed + int64(len(r.URL.Path))*7 + int64(h.Day))
	res := h.Web.Fetch(rng, "http://"+hostName+r.URL.Path, h.Day, ims)
	switch res.Status {
	case StatusUnavailable:
		http.Error(w, "try again", http.StatusServiceUnavailable)
	case StatusNotFound:
		http.NotFound(w, r)
	case StatusNotModified:
		w.Header().Set("X-DWR-Last-Modified", strconv.Itoa(res.LastModified))
		w.WriteHeader(http.StatusNotModified)
	default:
		w.Header().Set("Content-Type", "text/html")
		w.Header().Set("X-DWR-Last-Modified", strconv.Itoa(res.LastModified))
		fmt.Fprint(w, res.HTML)
	}
}

// HTTPGet fetches one simulated URL through an HTTP base endpoint
// (typically an httptest server in front of an HTTPHandler), returning
// the status code, body, and last-modified day. It is the transport
// used by the real-socket integration tests and demos.
func HTTPGet(client *http.Client, base, url string, ifModifiedSince int) (status int, body string, lastMod int, err error) {
	host, path, ok := SplitURL(url)
	if !ok {
		return 0, "", 0, fmt.Errorf("simweb: bad url %q", url)
	}
	req, err := http.NewRequest("GET", base+path, nil)
	if err != nil {
		return 0, "", 0, err
	}
	req.Header.Set("X-DWR-Host", host)
	if ifModifiedSince >= 0 {
		req.Header.Set("X-DWR-If-Modified-Since", strconv.Itoa(ifModifiedSince))
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, "", 0, err
	}
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 32<<10)
	for {
		n, rerr := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if rerr != nil {
			break
		}
	}
	if v := resp.Header.Get("X-DWR-Last-Modified"); v != "" {
		lastMod, _ = strconv.Atoi(v)
	}
	return resp.StatusCode, sb.String(), lastMod, nil
}
