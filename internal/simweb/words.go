// Package simweb generates and serves a synthetic Web with the
// statistical properties the paper's crawling, indexing, and querying
// challenges depend on: power-law in-degree, host-level link locality,
// Zipfian term frequencies with topical and language structure, per-page
// change processes, and servers that are slow, flaky, or violate the
// HTTP/HTML standards.
//
// It substitutes for the live Web of the paper (see DESIGN.md): every
// claim in Section 3 is about these distributions, not about any
// particular real page.
package simweb

import (
	"fmt"
	"math/rand"
	"strings"

	"dwr/internal/randx"
)

// languageSyllables gives each synthetic language a distinct phonotactic
// flavour so that the n-gram language identifier in internal/textproc can
// genuinely discriminate the generated text, as required for the
// language-based routing experiments of Section 5.
var languageSyllables = map[string][]string{
	"en": {"th", "ing", "er", "an", "re", "on", "st", "en", "wh", "ck", "tion", "ly", "ed", "es", "igh"},
	"es": {"ci", "on", "ar", "la", "el", "os", "as", "que", "do", "en", "ez", "cion", "lla", "rro", "ña"},
	"it": {"zi", "one", "la", "il", "re", "to", "ia", "gli", "che", "sco", "tta", "ssi", "pro", "per", "ino"},
	"de": {"sch", "ung", "der", "ein", "ich", "ber", "gen", "zu", "ver", "auf", "tz", "pf", "cht", "ack", "oll"},
}

// Languages returns the language codes the generator supports, in a
// stable order.
func Languages() []string { return []string{"en", "es", "it", "de"} }

// makeWord deterministically builds a pseudo-word for (lang, termID).
// Words for the same ID differ across languages, and the per-language
// syllable inventory gives each language a recognizable character
// distribution.
func makeWord(lang string, termID int) string {
	syll, ok := languageSyllables[lang]
	if !ok {
		syll = languageSyllables["en"]
	}
	// Derive a deterministic sequence of syllables from termID.
	x := uint64(termID)*2654435761 + 1
	nSyll := 2 + int(x%3) // 2-4 syllables
	var b strings.Builder
	for i := 0; i < nSyll; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		b.WriteString(syll[(x>>33)%uint64(len(syll))])
	}
	return b.String()
}

// Vocabulary is a per-language term table mapping dense term IDs to
// word strings and back.
type Vocabulary struct {
	Lang  string
	words []string
	ids   map[string]int
}

// NewVocabulary builds a vocabulary of size n for lang. Term IDs are
// ordered by global popularity: id 0 is the most frequent term.
func NewVocabulary(lang string, n int) *Vocabulary {
	v := &Vocabulary{Lang: lang, words: make([]string, n), ids: make(map[string]int, n)}
	for i := 0; i < n; i++ {
		w := makeWord(lang, i)
		// Deterministically disambiguate collisions by appending the ID;
		// collisions are rare but must not merge two term IDs.
		if _, dup := v.ids[w]; dup {
			w = fmt.Sprintf("%s%d", w, i)
		}
		v.words[i] = w
		v.ids[w] = i
	}
	return v
}

// Size returns the number of terms.
func (v *Vocabulary) Size() int { return len(v.words) }

// Word returns the word for a term ID; it panics on out-of-range IDs.
func (v *Vocabulary) Word(id int) string { return v.words[id] }

// ID returns the term ID for a word, or -1 if unknown.
func (v *Vocabulary) ID(word string) int {
	if id, ok := v.ids[word]; ok {
		return id
	}
	return -1
}

// TopicModel biases term draws by topic: each topic prefers a distinct
// band of the vocabulary (on top of the global Zipf popularity), giving
// documents topical term co-occurrence that k-means and co-clustering
// partitioners can discover.
type TopicModel struct {
	topics    int
	vocabSize int
	bandWidth int
}

// NewTopicModel creates a model with the given number of topics over a
// vocabulary of vocabSize terms.
func NewTopicModel(topics, vocabSize int) *TopicModel {
	if topics <= 0 {
		topics = 1
	}
	return &TopicModel{topics: topics, vocabSize: vocabSize, bandWidth: vocabSize / topics}
}

// Topics returns the number of topics.
func (tm *TopicModel) Topics() int { return tm.topics }

// Draw samples one term ID for the given topic: with probability
// topicBias the term comes from the topic's own band (Zipf within the
// band), otherwise from the global Zipf distribution.
func (tm *TopicModel) Draw(rng *rand.Rand, topic int, global, band *randx.Zipf, topicBias float64) int {
	if rng.Float64() < topicBias && tm.bandWidth > 0 {
		off := band.Draw(rng)
		return (topic*tm.bandWidth + off) % tm.vocabSize
	}
	return global.Draw(rng)
}

// TopicOf reports which topic band a term ID falls in.
func (tm *TopicModel) TopicOf(termID int) int {
	if tm.bandWidth == 0 {
		return 0
	}
	t := termID / tm.bandWidth
	if t >= tm.topics {
		t = tm.topics - 1
	}
	return t
}
