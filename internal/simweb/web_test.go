package simweb

import (
	"sort"
	"strings"
	"testing"

	"dwr/internal/randx"
	"dwr/internal/textproc"
)

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Hosts = 60
	cfg.MaxPages = 80
	cfg.VocabSize = 2000
	return cfg
}

func TestDeterministicGeneration(t *testing.T) {
	a, b := New(smallConfig()), New(smallConfig())
	if len(a.Pages) != len(b.Pages) || len(a.Hosts) != len(b.Hosts) {
		t.Fatalf("sizes differ: %d/%d pages, %d/%d hosts", len(a.Pages), len(b.Pages), len(a.Hosts), len(b.Hosts))
	}
	for i := range a.Pages {
		pa, pb := a.Pages[i], b.Pages[i]
		if pa.Path != pb.Path || pa.Topic != pb.Topic || len(pa.Terms) != len(pb.Terms) || len(pa.Links) != len(pb.Links) {
			t.Fatalf("page %d differs between same-seed webs", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	cfg := smallConfig()
	a := New(cfg)
	cfg.Seed = 2
	b := New(cfg)
	if len(a.Pages) == len(b.Pages) {
		same := true
		for i := range a.Pages {
			if a.Pages[i].Path != b.Pages[i].Path || len(a.Pages[i].Terms) != len(b.Pages[i].Terms) {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical webs")
		}
	}
}

func TestInDegreePowerLaw(t *testing.T) {
	w := New(smallConfig())
	degrees := make([]int, 0, len(w.Pages))
	for _, p := range w.Pages {
		degrees = append(degrees, p.InDegree)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(degrees)))
	total := 0
	for _, d := range degrees {
		total += d
	}
	if total == 0 {
		t.Fatal("no links generated")
	}
	// Heavy tail: the top 10% of pages should hold a clear majority of
	// in-links (for a power law, typically > 50%).
	topN := len(degrees) / 10
	topSum := 0
	for _, d := range degrees[:topN] {
		topSum += d
	}
	if frac := float64(topSum) / float64(total); frac < 0.35 {
		t.Fatalf("top 10%% of pages hold only %.1f%% of in-links; distribution not heavy-tailed", frac*100)
	}
}

func TestLinkLocality(t *testing.T) {
	cfg := smallConfig()
	cfg.LinkLocality = 0.75
	w := New(cfg)
	local, total := 0, 0
	for _, p := range w.Pages {
		for _, l := range p.Links {
			total++
			if w.Pages[l].Host == p.Host {
				local++
			}
		}
	}
	frac := float64(local) / float64(total)
	// Locality parameter plus incidental same-host preferential links.
	if frac < 0.5 || frac > 0.95 {
		t.Fatalf("intra-host link fraction = %.2f, want around 0.75", frac)
	}
}

func TestURLRoundTrip(t *testing.T) {
	w := New(smallConfig())
	for _, pid := range []int{0, len(w.Pages) / 2, len(w.Pages) - 1} {
		url := w.URL(pid)
		if got := w.PageByURL(url); got != pid {
			t.Fatalf("PageByURL(URL(%d)) = %d", pid, got)
		}
	}
	if got := w.PageByURL("http://nosuch.example/x.html"); got != -1 {
		t.Fatalf("unknown URL resolved to %d", got)
	}
	if got := w.PageByURL("ftp://bad"); got != -1 {
		t.Fatalf("malformed URL resolved to %d", got)
	}
}

func TestSplitURL(t *testing.T) {
	cases := []struct {
		in         string
		host, path string
		ok         bool
	}{
		{"http://a.example/p.html", "a.example", "/p.html", true},
		{"http://a.example", "a.example", "/", true},
		{"https://x/y", "", "", false},
		{"junk", "", "", false},
	}
	for _, c := range cases {
		h, p, ok := SplitURL(c.in)
		if h != c.host || p != c.path || ok != c.ok {
			t.Errorf("SplitURL(%q) = (%q,%q,%v), want (%q,%q,%v)", c.in, h, p, ok, c.host, c.path, c.ok)
		}
	}
}

func TestFetchOKAndParseable(t *testing.T) {
	w := New(smallConfig())
	rng := randx.New(9)
	okCount := 0
	for pid := 0; pid < len(w.Pages) && okCount < 50; pid += 7 {
		res := w.Fetch(rng, w.URL(pid), 10, -1)
		if res.Status == StatusUnavailable {
			continue // flaky host; allowed
		}
		if res.Status != StatusOK {
			t.Fatalf("Fetch(%s) status %d", w.URL(pid), res.Status)
		}
		okCount++
		doc := textproc.ParseHTML(res.HTML)
		if doc.Text == "" {
			t.Fatalf("page %d produced empty text", pid)
		}
		// Every link in the page must resolve to a real page (the
		// generator never emits dangling links).
		for _, href := range doc.Links {
			abs := ResolveLink(w.URL(pid), href)
			if w.PageByURL(abs) == -1 {
				t.Fatalf("page %d has unresolvable link %q -> %q", pid, href, abs)
			}
		}
	}
	if okCount == 0 {
		t.Fatal("no successful fetches")
	}
}

func TestFetchMalformedHostStillYieldsLinks(t *testing.T) {
	w := New(smallConfig())
	rng := randx.New(4)
	checked := false
	for _, h := range w.Hosts {
		if !h.Malformed || h.Flaky || len(h.Pages) == 0 {
			continue
		}
		pid := h.Pages[0]
		p := w.Pages[pid]
		if len(p.Links) == 0 {
			continue
		}
		res := w.Fetch(rng, w.URL(pid), 1, -1)
		if res.Status != StatusOK {
			continue
		}
		doc := textproc.ParseHTML(res.HTML)
		if len(doc.Links) != len(p.Links) {
			t.Fatalf("malformed page %d: parser found %d links, want %d", pid, len(doc.Links), len(p.Links))
		}
		checked = true
		break
	}
	if !checked {
		t.Skip("no malformed host with links in this configuration")
	}
}

func TestFetch404(t *testing.T) {
	w := New(smallConfig())
	rng := randx.New(2)
	res := w.Fetch(rng, "http://"+w.Hosts[0].Name+"/nosuch.html", 1, -1)
	if res.Status != StatusNotFound {
		t.Fatalf("status = %d, want 404", res.Status)
	}
}

func TestFetchIfModifiedSince(t *testing.T) {
	w := New(smallConfig())
	rng := randx.New(3)
	var conforming *Host
	for _, h := range w.Hosts {
		if !h.NonConforming && !h.Flaky && len(h.Pages) > 0 {
			conforming = h
			break
		}
	}
	if conforming == nil {
		t.Fatal("no conforming host")
	}
	pid := conforming.Pages[0]
	url := w.URL(pid)
	day := 30
	lastMod := w.LastModified(pid, day)
	res := w.Fetch(rng, url, day, lastMod) // nothing newer
	if res.Status != StatusNotModified {
		t.Fatalf("conforming host returned %d for fresh If-Modified-Since, want 304", res.Status)
	}
	if res.HTML != "" {
		t.Fatal("304 response carried a body")
	}
	res = w.Fetch(rng, url, day, -1)
	if res.Status != StatusOK || res.HTML == "" {
		t.Fatalf("unconditional fetch: status %d, body %d bytes", res.Status, len(res.HTML))
	}
}

func TestNonConformingHostIgnoresHeader(t *testing.T) {
	w := New(smallConfig())
	rng := randx.New(3)
	for _, h := range w.Hosts {
		if h.NonConforming && !h.Flaky && len(h.Pages) > 0 {
			pid := h.Pages[0]
			res := w.Fetch(rng, w.URL(pid), 30, 30)
			if res.Status != StatusOK {
				t.Fatalf("non-conforming host returned %d, want 200 (it ignores If-Modified-Since)", res.Status)
			}
			return
		}
	}
	t.Skip("no non-conforming host in this configuration")
}

func TestChangeProcessDeterministicAndMonotone(t *testing.T) {
	w := New(smallConfig())
	for _, pid := range []int{1, 11, 101} {
		if pid >= len(w.Pages) {
			continue
		}
		a, b := w.LastModified(pid, 50), w.LastModified(pid, 50)
		if a != b {
			t.Fatalf("LastModified not deterministic: %d vs %d", a, b)
		}
		prev := 0
		for day := 0; day <= 60; day += 5 {
			lm := w.LastModified(pid, day)
			if lm < prev || lm > day {
				t.Fatalf("LastModified(%d, %d) = %d, prev %d: not monotone in-range", pid, day, lm, prev)
			}
			prev = lm
		}
	}
}

func TestRobots(t *testing.T) {
	w := New(smallConfig())
	sawRobots, sawNone := false, false
	for _, h := range w.Hosts {
		body := w.Robots(h.Name)
		if h.HasRobots {
			if !strings.Contains(body, "Disallow: /private/") {
				t.Fatalf("host %s robots.txt missing disallow: %q", h.Name, body)
			}
			sawRobots = true
		} else {
			if body != "" {
				t.Fatalf("host %s without robots served %q", h.Name, body)
			}
			sawNone = true
		}
	}
	if !sawRobots || !sawNone {
		t.Fatal("configuration produced no robots diversity")
	}
}

func TestSitemapExcludesPrivate(t *testing.T) {
	w := New(smallConfig())
	for _, h := range w.Hosts {
		entries := w.Sitemap(h.Name, 10)
		if !h.HasSitemap {
			if entries != nil {
				t.Fatalf("host without sitemap returned %d entries", len(entries))
			}
			continue
		}
		for _, e := range entries {
			if strings.Contains(e.URL, "/private/") {
				t.Fatalf("sitemap lists private URL %s", e.URL)
			}
		}
	}
}

func TestMostCitedSorted(t *testing.T) {
	w := New(smallConfig())
	top := w.MostCited(20)
	if len(top) != 20 {
		t.Fatalf("MostCited(20) returned %d", len(top))
	}
	for i := 1; i < len(top); i++ {
		if w.Pages[top[i-1]].InDegree < w.Pages[top[i]].InDegree {
			t.Fatal("MostCited not sorted by in-degree")
		}
	}
}

func TestLanguageIdentifiableContent(t *testing.T) {
	// Generated text in different languages must be distinguishable by
	// the n-gram identifier, or the §5 language-routing experiment is
	// meaningless.
	cfg := smallConfig()
	w := New(cfg)
	var profiles []*textproc.LangProfile
	for _, lang := range cfg.Languages {
		var sample strings.Builder
		count := 0
		for _, h := range w.Hosts {
			if h.Lang != lang || len(h.Pages) == 0 {
				continue
			}
			p := w.Pages[h.Pages[0]]
			for _, tid := range p.Terms[:min(len(p.Terms), 100)] {
				sample.WriteString(w.Vocabs[lang].Word(int(tid)))
				sample.WriteByte(' ')
			}
			count++
			if count > 5 {
				break
			}
		}
		profiles = append(profiles, textproc.NewLangProfile(lang, sample.String()))
	}
	li := textproc.NewLangIdentifier(profiles...)
	correct, total := 0, 0
	for i := len(w.Hosts) - 1; i >= 0 && total < 30; i-- {
		h := w.Hosts[i]
		if len(h.Pages) == 0 {
			continue
		}
		p := w.Pages[h.Pages[len(h.Pages)-1]]
		var text strings.Builder
		for _, tid := range p.Terms[:min(len(p.Terms), 80)] {
			text.WriteString(w.Vocabs[h.Lang].Word(int(tid)))
			text.WriteByte(' ')
		}
		if li.Identify(text.String()) == h.Lang {
			correct++
		}
		total++
	}
	if total == 0 {
		t.Fatal("no hosts sampled")
	}
	if acc := float64(correct) / float64(total); acc < 0.8 {
		t.Fatalf("language identification accuracy %.2f on generated text, want ≥ 0.8", acc)
	}
}

func TestVocabularyRoundTrip(t *testing.T) {
	v := NewVocabulary("en", 500)
	for _, id := range []int{0, 1, 250, 499} {
		w := v.Word(id)
		if got := v.ID(w); got != id {
			t.Fatalf("ID(Word(%d)) = %d", id, got)
		}
	}
	if v.ID("nonexistentword") != -1 {
		t.Fatal("unknown word did not return -1")
	}
}

func TestCrawlablePages(t *testing.T) {
	w := New(smallConfig())
	n := w.CrawlablePages()
	if n <= 0 || n > len(w.Pages) {
		t.Fatalf("CrawlablePages = %d of %d", n, len(w.Pages))
	}
	priv := 0
	for _, p := range w.Pages {
		if p.Private {
			priv++
		}
	}
	if n+priv != len(w.Pages) {
		t.Fatalf("crawlable %d + private %d != total %d", n, priv, len(w.Pages))
	}
}

func TestResolveLink(t *testing.T) {
	cases := []struct{ base, href, want string }{
		{"http://a.example/x.html", "http://b.example/y.html", "http://b.example/y.html"},
		{"http://a.example/x.html", "/y.html", "http://a.example/y.html"},
		{"http://a.example/x.html", "y.html", "http://a.example/y.html"},
		{"http://a.example/x.html", "", ""},
		{"junk", "/y.html", ""},
	}
	for _, c := range cases {
		if got := ResolveLink(c.base, c.href); got != c.want {
			t.Errorf("ResolveLink(%q, %q) = %q, want %q", c.base, c.href, got, c.want)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
