package querylog

import (
	"math"
	"testing"

	"dwr/internal/simweb"
)

func testWeb() *simweb.Web {
	cfg := simweb.DefaultConfig()
	cfg.Hosts = 60
	cfg.MaxPages = 60
	cfg.VocabSize = 2000
	return simweb.New(cfg)
}

func testLog(t *testing.T) (*simweb.Web, *Log) {
	t.Helper()
	w := testWeb()
	cfg := DefaultConfig()
	cfg.Distinct = 500
	cfg.Total = 8000
	return w, Generate(w, cfg)
}

func TestGenerateBasics(t *testing.T) {
	_, lg := testLog(t)
	if len(lg.Queries) == 0 || len(lg.Pool) != 500 {
		t.Fatalf("log has %d queries, pool %d", len(lg.Queries), len(lg.Pool))
	}
	for i, q := range lg.Queries {
		if q.ID != i {
			t.Fatalf("query %d has ID %d", i, q.ID)
		}
		if len(q.Terms) == 0 || q.Key == "" {
			t.Fatalf("query %d empty", i)
		}
		if q.Hour < 0 || q.Hour >= 24 {
			t.Fatalf("query %d hour %v out of range", i, q.Hour)
		}
		if i > 0 && lg.Queries[i-1].Time() > q.Time() {
			t.Fatalf("log not sorted by arrival at %d", i)
		}
	}
}

func TestDeterminism(t *testing.T) {
	w := testWeb()
	cfg := DefaultConfig()
	cfg.Distinct = 200
	cfg.Total = 2000
	a, b := Generate(w, cfg), Generate(w, cfg)
	if len(a.Queries) != len(b.Queries) {
		t.Fatal("same-seed logs differ in length")
	}
	for i := range a.Queries {
		if a.Queries[i].Key != b.Queries[i].Key || a.Queries[i].Day != b.Queries[i].Day {
			t.Fatalf("same-seed logs differ at %d", i)
		}
	}
}

func TestQueriesMatchDocuments(t *testing.T) {
	// Every query term must exist in some language's vocabulary — it was
	// sampled from page content, so a search engine over the same web
	// must be able to match it.
	w, lg := testLog(t)
	for _, q := range lg.Pool[:100] {
		v := w.Vocabs[q.Lang]
		for _, term := range q.Terms {
			if v.ID(term) < 0 {
				t.Fatalf("query term %q not in %s vocabulary", term, q.Lang)
			}
		}
	}
}

func TestZipfPopularity(t *testing.T) {
	_, lg := testLog(t)
	counts := lg.PopularityCounts()
	if len(counts) < 10 {
		t.Fatal("too few distinct queries observed")
	}
	// Heavy head: most popular query much more frequent than the median.
	if counts[0] < 5*counts[len(counts)/2] {
		t.Fatalf("popularity not skewed: top=%d median=%d", counts[0], counts[len(counts)/2])
	}
}

func TestDiurnalPattern(t *testing.T) {
	_, lg := testLog(t)
	vol := lg.HourlyVolume()
	for r := range vol {
		min, max := math.MaxInt32, 0
		for _, c := range vol[r] {
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		if max < 2*min+2 {
			t.Fatalf("region %d volume too flat: min=%d max=%d", r, min, max)
		}
	}
	// Regional peaks must differ (timezone offsets).
	peak := func(r int) int {
		best, bi := -1, 0
		for h, c := range vol[r] {
			if c > best {
				best, bi = c, h
			}
		}
		return bi
	}
	if lg.Regions >= 2 && peak(0) == peak(1) {
		t.Fatalf("regions 0 and 1 peak at the same hour %d", peak(0))
	}
}

func TestTopicDrift(t *testing.T) {
	w := testWeb()
	cfg := DefaultConfig()
	cfg.Distinct = 500
	cfg.Total = 20000
	cfg.DriftAmp = 0.9
	lg := Generate(w, cfg)
	byDay := lg.TopicVolumeByDay(cfg.Days)
	// Some topic's share must vary substantially between its best and
	// worst day.
	drifted := false
	for tpc := 0; tpc < lg.Topics; tpc++ {
		min, max := math.MaxInt32, 0
		for d := 0; d < cfg.Days; d++ {
			c := byDay[d][tpc]
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		if max > 2*min+5 {
			drifted = true
			break
		}
	}
	if !drifted {
		t.Fatal("no topic showed drift despite DriftAmp=0.9")
	}
}

func TestSplitByDay(t *testing.T) {
	_, lg := testLog(t)
	train, test := lg.SplitByDay(7)
	if len(train.Queries)+len(test.Queries) != len(lg.Queries) {
		t.Fatal("split lost queries")
	}
	for _, q := range train.Queries {
		if q.Day >= 7 {
			t.Fatal("train contains post-split query")
		}
	}
	for _, q := range test.Queries {
		if q.Day < 7 {
			t.Fatal("test contains pre-split query")
		}
	}
	if len(train.Queries) == 0 || len(test.Queries) == 0 {
		t.Fatal("degenerate split")
	}
}

func TestTermWeightsAndCoOccurrence(t *testing.T) {
	_, lg := testLog(t)
	tw := lg.TermWeights()
	if len(tw) == 0 {
		t.Fatal("no term weights")
	}
	total := 0
	for _, q := range lg.Queries {
		total += len(q.Terms)
	}
	sum := 0
	for _, c := range tw {
		sum += c
	}
	if sum != total {
		t.Fatalf("term weights sum %d != total term instances %d", sum, total)
	}
	co := lg.CoOccurrence()
	for pair, c := range co {
		if pair[0] >= pair[1] {
			t.Fatalf("co-occurrence pair %v not canonical", pair)
		}
		if c <= 0 {
			t.Fatalf("non-positive co-occurrence count for %v", pair)
		}
	}
}
