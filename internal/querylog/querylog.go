// Package querylog generates and analyzes synthetic query logs with the
// structure Sections 4–5 of the paper mine from real logs: Zipfian query
// popularity (caching), topical locality (collection selection and
// partitioning), language mix (language routing), diurnal arrival
// patterns offset by region (geographic offloading), and slow topic
// drift (the "user model becoming inaccurate" problem).
package querylog

import (
	"math"
	"math/rand"
	"sort"
	"strings"

	"dwr/internal/randx"
	"dwr/internal/simweb"
)

// Config controls log generation.
type Config struct {
	Seed     int64
	Distinct int     // size of the distinct-query pool
	Total    int     // query instances in the log
	ZipfS    float64 // popularity skew across distinct queries
	MinTerms int     // terms per query, lower bound
	MaxTerms int     // terms per query, upper bound
	Days     int     // days the log spans
	PeakHour float64 // local hour of peak traffic
	DriftAmp float64 // amplitude of topic-popularity drift over the log (0..1)
}

// DefaultConfig returns a log configuration sized for the experiments.
func DefaultConfig() Config {
	return Config{
		Seed:     1,
		Distinct: 2000,
		Total:    20000,
		ZipfS:    0.9,
		MinTerms: 1,
		MaxTerms: 3,
		Days:     14,
		PeakHour: 14,
		DriftAmp: 0.5,
	}
}

// Query is one logged query instance.
type Query struct {
	ID     int    // instance ordinal in arrival order
	Key    string // canonical query text (terms joined by spaces)
	Terms  []string
	Topic  int     // topic of the page the query was sampled from
	Lang   string  // language of that page's host
	Region int     // region the query originates from
	Day    int     // virtual day of arrival
	Hour   float64 // local hour of arrival [0, 24)
}

// Time returns the absolute arrival time in virtual hours since the log
// start.
func (q *Query) Time() float64 { return float64(q.Day)*24 + q.Hour }

// Log is a generated query stream plus its distinct-query pool.
type Log struct {
	Queries []Query
	Pool    []Query // distinct queries (ID unset, arrival unset)
	Regions int
	Topics  int
}

// Generate samples a query log against web: distinct queries are drawn
// from actual page content (so they match documents), and instances
// follow Zipf popularity modulated by diurnal and drift patterns.
func Generate(web *simweb.Web, cfg Config) *Log {
	rng := randx.New(cfg.Seed)
	if cfg.MinTerms <= 0 {
		cfg.MinTerms = 1
	}
	if cfg.MaxTerms < cfg.MinTerms {
		cfg.MaxTerms = cfg.MinTerms
	}
	if cfg.Days <= 0 {
		cfg.Days = 1
	}
	topics := web.Topics.Topics()
	regions := web.Config.Regions
	if regions <= 0 {
		regions = 1
	}
	lg := &Log{Regions: regions, Topics: topics}

	// Distinct pool: sample a page, take 1-3 terms from its content.
	// Pages are sampled by popularity (Zipf over the in-degree ranking):
	// real query traffic concentrates on popular content, which is what
	// makes a large slice of the collection never-recalled (Puppin's 53%)
	// and gives usage-based partitioning its edge.
	byPopularity := make([]int, len(web.Pages))
	for i := range byPopularity {
		byPopularity[i] = i
	}
	sort.Slice(byPopularity, func(a, b int) bool {
		pa, pb := web.Pages[byPopularity[a]], web.Pages[byPopularity[b]]
		if pa.InDegree != pb.InDegree {
			return pa.InDegree > pb.InDegree
		}
		return byPopularity[a] < byPopularity[b]
	})
	pageZipf := randx.NewZipf(len(web.Pages), 0.8)
	lg.Pool = make([]Query, 0, cfg.Distinct)
	seen := make(map[string]bool, cfg.Distinct)
	for len(lg.Pool) < cfg.Distinct {
		p := web.Pages[byPopularity[pageZipf.Draw(rng)]]
		if len(p.Terms) == 0 {
			continue
		}
		h := web.Hosts[p.Host]
		vocab := web.Vocabs[h.Lang]
		n := cfg.MinTerms + rng.Intn(cfg.MaxTerms-cfg.MinTerms+1)
		terms := make([]string, 0, n)
		used := make(map[string]bool, n)
		for tries := 0; len(terms) < n && tries < 20; tries++ {
			w := vocab.Word(int(p.Terms[rng.Intn(len(p.Terms))]))
			if !used[w] {
				used[w] = true
				terms = append(terms, w)
			}
		}
		sort.Strings(terms)
		key := strings.Join(terms, " ")
		if seen[key] {
			continue
		}
		seen[key] = true
		lg.Pool = append(lg.Pool, Query{
			Key: key, Terms: terms, Topic: p.Topic, Lang: h.Lang,
			Region: h.Region,
		})
	}

	// Group the pool by topic for drift-aware sampling; Zipf popularity
	// within each topic group and across the whole pool.
	byTopic := make([][]int, topics)
	for i, q := range lg.Pool {
		byTopic[q.Topic] = append(byTopic[q.Topic], i)
	}
	zipfByTopic := make([]*randx.Zipf, topics)
	baseWeight := make([]float64, topics)
	for t := 0; t < topics; t++ {
		if len(byTopic[t]) > 0 {
			zipfByTopic[t] = randx.NewZipf(len(byTopic[t]), cfg.ZipfS)
		}
		baseWeight[t] = float64(len(byTopic[t]))
	}

	// Instances.
	lg.Queries = make([]Query, 0, cfg.Total)
	weights := make([]float64, topics)
	for i := 0; i < cfg.Total; i++ {
		day := rng.Intn(cfg.Days)
		// Topic drift: each topic's popularity oscillates across the log
		// with a topic-specific phase.
		for t := 0; t < topics; t++ {
			phase := 2 * math.Pi * (float64(day)/float64(cfg.Days) + float64(t)/float64(topics))
			weights[t] = baseWeight[t] * (1 + cfg.DriftAmp*math.Sin(phase))
			if weights[t] < 0 {
				weights[t] = 0
			}
		}
		topic := randx.Weighted(rng, weights)
		if zipfByTopic[topic] == nil {
			continue
		}
		q := lg.Pool[byTopic[topic][zipfByTopic[topic].Draw(rng)]]
		q.ID = len(lg.Queries)
		q.Day = day
		q.Region = rng.Intn(regions)
		q.Hour = diurnalHour(rng, cfg.PeakHour, q.Region, regions)
		lg.Queries = append(lg.Queries, q)
	}
	// Sort by arrival time so the log plays back in order.
	sort.SliceStable(lg.Queries, func(i, j int) bool {
		return lg.Queries[i].Time() < lg.Queries[j].Time()
	})
	for i := range lg.Queries {
		lg.Queries[i].ID = i
	}
	return lg
}

// diurnalHour draws a local arrival hour peaked at peak (UTC) shifted by
// the region's timezone offset; regions are spread around the globe so
// their peaks interleave — the basis for the offloading experiment.
func diurnalHour(rng *rand.Rand, peak float64, region, regions int) float64 {
	offset := 24 * float64(region) / float64(regions)
	// Rejection-sample from 1 + cos shape centred on the regional peak.
	for {
		h := rng.Float64() * 24
		rel := 2 * math.Pi * (h - peak - offset) / 24
		accept := (1 + math.Cos(rel)) / 2
		if rng.Float64() < accept {
			return h
		}
	}
}

// SplitByDay partitions the log at day: queries on days < day form the
// training log, the rest the test log. The pool is shared.
func (lg *Log) SplitByDay(day int) (train, test *Log) {
	train = &Log{Pool: lg.Pool, Regions: lg.Regions, Topics: lg.Topics}
	test = &Log{Pool: lg.Pool, Regions: lg.Regions, Topics: lg.Topics}
	for _, q := range lg.Queries {
		if q.Day < day {
			train.Queries = append(train.Queries, q)
		} else {
			test.Queries = append(test.Queries, q)
		}
	}
	return train, test
}

// TermWeights returns, for each term appearing in the log, the number of
// query instances containing it — the query-frequency component of the
// Moffat bin-packing weight (C7).
func (lg *Log) TermWeights() map[string]int {
	w := make(map[string]int)
	for _, q := range lg.Queries {
		for _, t := range q.Terms {
			w[t]++
		}
	}
	return w
}

// CoOccurrence counts, for each unordered term pair appearing together
// in a query instance, the number of co-occurrences — input to the
// co-occurrence-aware term partitioner (Lucchese et al.).
func (lg *Log) CoOccurrence() map[[2]string]int {
	co := make(map[[2]string]int)
	for _, q := range lg.Queries {
		for i := 0; i < len(q.Terms); i++ {
			for j := i + 1; j < len(q.Terms); j++ {
				a, b := q.Terms[i], q.Terms[j]
				if a > b {
					a, b = b, a
				}
				co[[2]string{a, b}]++
			}
		}
	}
	return co
}

// TopKeys returns the n most frequent distinct query keys, most popular
// first (ties break lexicographically for determinism) — the popularity
// head an SDC result cache pins as its static set. n <= 0 returns all
// distinct keys.
func (lg *Log) TopKeys(n int) []string {
	counts := make(map[string]int)
	for _, q := range lg.Queries {
		counts[q.Key]++
	}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if counts[keys[i]] != counts[keys[j]] {
			return counts[keys[i]] > counts[keys[j]]
		}
		return keys[i] < keys[j]
	})
	if n > 0 && len(keys) > n {
		keys = keys[:n]
	}
	return keys
}

// PopularityCounts returns instance counts per distinct query key,
// sorted descending — the cache-design input.
func (lg *Log) PopularityCounts() []int {
	counts := make(map[string]int)
	for _, q := range lg.Queries {
		counts[q.Key]++
	}
	out := make([]int, 0, len(counts))
	for _, c := range counts {
		out = append(out, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(out)))
	return out
}

// HourlyVolume returns query counts per (region, hour-of-day) bucket.
func (lg *Log) HourlyVolume() [][]int {
	out := make([][]int, lg.Regions)
	for r := range out {
		out[r] = make([]int, 24)
	}
	for _, q := range lg.Queries {
		out[q.Region][int(q.Hour)%24]++
	}
	return out
}

// TopicVolumeByDay returns query counts per (day, topic).
func (lg *Log) TopicVolumeByDay(days int) [][]int {
	out := make([][]int, days)
	for d := range out {
		out[d] = make([]int, lg.Topics)
	}
	for _, q := range lg.Queries {
		if q.Day < days {
			out[q.Day][q.Topic]++
		}
	}
	return out
}
