package querylog

import "math"

// DriftDetector watches the topic distribution of the query stream and
// reports when it has shifted significantly from the reference window —
// the paper's open challenge "to determine online when users change
// their behavior significantly" (§5, External factors). It compares
// consecutive fixed-size windows by total-variation distance.
type DriftDetector struct {
	topics    int
	window    int
	threshold float64 // TV distance in [0,1] that counts as drift

	ref     []float64 // reference distribution (normalized)
	haveRef bool
	cur     []int
	n       int
	// Detections counts how many times drift was signalled.
	Detections int
}

// NewDriftDetector creates a detector over the given number of topics,
// comparing windows of `window` queries, signalling at TV ≥ threshold.
func NewDriftDetector(topics, window int, threshold float64) *DriftDetector {
	if window < 1 {
		window = 100
	}
	return &DriftDetector{
		topics:    topics,
		window:    window,
		threshold: threshold,
		cur:       make([]int, topics),
	}
}

// Observe feeds one query's topic. It returns true when the just-closed
// window's distribution diverges from the reference by at least the
// threshold; the reference is then reset to the new window (the system
// is assumed to reconfigure).
func (dd *DriftDetector) Observe(topic int) bool {
	if topic >= 0 && topic < dd.topics {
		dd.cur[topic]++
	}
	dd.n++
	if dd.n < dd.window {
		return false
	}
	dist := normalize(dd.cur)
	drifted := false
	if dd.haveRef {
		if tvDistance(dd.ref, dist) >= dd.threshold {
			drifted = true
			dd.Detections++
			dd.ref = dist // reconfigured: new behaviour is the new normal
		}
	} else {
		dd.ref = dist
		dd.haveRef = true
	}
	dd.cur = make([]int, dd.topics)
	dd.n = 0
	return drifted
}

func normalize(counts []int) []float64 {
	total := 0
	for _, c := range counts {
		total += c
	}
	out := make([]float64, len(counts))
	if total == 0 {
		return out
	}
	for i, c := range counts {
		out[i] = float64(c) / float64(total)
	}
	return out
}

// tvDistance is the total-variation distance between two distributions.
func tvDistance(p, q []float64) float64 {
	d := 0.0
	for i := range p {
		d += math.Abs(p[i] - q[i])
	}
	return d / 2
}
