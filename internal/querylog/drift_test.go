package querylog

import (
	"math/rand"
	"testing"
)

func TestDriftDetectorStableStream(t *testing.T) {
	dd := NewDriftDetector(4, 200, 0.2)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		if dd.Observe(rng.Intn(4)) {
			t.Fatalf("false drift detection at query %d on a uniform stream", i)
		}
	}
	if dd.Detections != 0 {
		t.Fatalf("detections = %d on stable stream", dd.Detections)
	}
}

func TestDriftDetectorCatchesShift(t *testing.T) {
	dd := NewDriftDetector(4, 200, 0.2)
	rng := rand.New(rand.NewSource(2))
	// Phase 1: topics 0/1 only.
	for i := 0; i < 1000; i++ {
		dd.Observe(rng.Intn(2))
	}
	if dd.Detections != 0 {
		t.Fatalf("detected drift during stationary phase")
	}
	// Phase 2: topics 2/3 only — a total shift.
	fired := false
	for i := 0; i < 1000; i++ {
		if dd.Observe(2 + rng.Intn(2)) {
			fired = true
			break
		}
	}
	if !fired {
		t.Fatal("detector missed a complete topic shift")
	}
}

func TestDriftDetectorResetAfterDetection(t *testing.T) {
	dd := NewDriftDetector(2, 100, 0.3)
	// Establish reference on topic 0.
	for i := 0; i < 300; i++ {
		dd.Observe(0)
	}
	// Shift to topic 1: one detection, then the new behaviour is normal.
	for i := 0; i < 1000; i++ {
		dd.Observe(1)
	}
	if dd.Detections != 1 {
		t.Fatalf("detections = %d, want exactly 1 (reference must reset)", dd.Detections)
	}
}

func TestDriftDetectorIgnoresOutOfRange(t *testing.T) {
	dd := NewDriftDetector(2, 10, 0.3)
	for i := 0; i < 50; i++ {
		dd.Observe(99) // invalid topic: counted as window progress only
	}
	if dd.Detections != 0 {
		t.Fatal("invalid topics caused detections")
	}
}

func TestTVDistance(t *testing.T) {
	if d := tvDistance([]float64{1, 0}, []float64{0, 1}); d != 1 {
		t.Fatalf("TV of disjoint = %v, want 1", d)
	}
	if d := tvDistance([]float64{0.5, 0.5}, []float64{0.5, 0.5}); d != 0 {
		t.Fatalf("TV of identical = %v, want 0", d)
	}
}
