package dnssim

import (
	"fmt"
	"sync"
	"testing"
)

func TestLookupDeterministicAddr(t *testing.T) {
	r := NewResolver(1, 50)
	a, _ := r.Lookup("x.example")
	b, _ := r.Lookup("x.example")
	if a.Addr != b.Addr {
		t.Fatalf("same host resolved to %s then %s", a.Addr, b.Addr)
	}
	c, _ := r.Lookup("y.example")
	if c.Addr == a.Addr {
		t.Fatal("distinct hosts got identical addresses (possible but suspicious for these names)")
	}
}

func TestLookupCountsQueries(t *testing.T) {
	r := NewResolver(1, 50)
	for i := 0; i < 10; i++ {
		r.Lookup("h.example")
	}
	if r.Queries() != 10 {
		t.Fatalf("Queries() = %d, want 10", r.Queries())
	}
}

func TestLookupLatencyPositive(t *testing.T) {
	r := NewResolver(2, 50)
	for i := 0; i < 100; i++ {
		if _, lat := r.Lookup(fmt.Sprintf("h%d.example", i)); lat <= 0 {
			t.Fatalf("lookup latency %v not positive", lat)
		}
	}
}

func TestCacheHitsWithinTTL(t *testing.T) {
	r := NewResolver(1, 50)
	c := NewCache(r)
	rec1, lat1 := c.Lookup("h.example", 0)
	rec2, lat2 := c.Lookup("h.example", 10)
	if rec1.Addr != rec2.Addr {
		t.Fatal("cache returned different record")
	}
	if lat2 >= lat1 && lat1 > 1 {
		t.Fatalf("cache hit latency %v not below miss latency %v", lat2, lat1)
	}
	if r.Queries() != 1 {
		t.Fatalf("resolver saw %d queries, want 1", r.Queries())
	}
	h, m := c.Stats()
	if h != 1 || m != 1 {
		t.Fatalf("stats = %d hits / %d misses, want 1/1", h, m)
	}
}

func TestCacheExpiry(t *testing.T) {
	r := NewResolver(1, 50)
	c := NewCache(r)
	c.Lookup("h.example", 0)
	c.Lookup("h.example", 301) // past the 300 s TTL
	if r.Queries() != 2 {
		t.Fatalf("resolver saw %d queries, want 2 (TTL expired)", r.Queries())
	}
}

func TestHitRatio(t *testing.T) {
	r := NewResolver(1, 50)
	c := NewCache(r)
	if c.HitRatio() != 0 {
		t.Fatal("empty cache hit ratio not 0")
	}
	c.Lookup("a.example", 0)
	for i := 0; i < 9; i++ {
		c.Lookup("a.example", 1)
	}
	if got := c.HitRatio(); got != 0.9 {
		t.Fatalf("hit ratio = %v, want 0.9", got)
	}
}

func TestCacheConcurrentAccess(t *testing.T) {
	r := NewResolver(1, 50)
	c := NewCache(r)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				c.Lookup(fmt.Sprintf("h%d.example", i%20), float64(i))
			}
		}(g)
	}
	wg.Wait()
	h, m := c.Stats()
	if h+m != 1600 {
		t.Fatalf("lookups recorded %d, want 1600", h+m)
	}
}
