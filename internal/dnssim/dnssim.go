// Package dnssim models the DNS infrastructure the paper names as a
// frequent crawler bottleneck (Section 3, external factors): lookups are
// slow, the crawler does not control the servers it probes, and "a common
// solution is to cache DNS lookup results". The resolver charges a
// latency per authoritative lookup; the cache serves repeat lookups for
// the record's TTL at near-zero cost.
package dnssim

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sync"

	"dwr/internal/randx"
)

// Resolver simulates an upstream DNS hierarchy. It answers every
// well-formed host name deterministically (the simulated Web's hosts all
// resolve) and charges a heavy-tailed latency per query.
type Resolver struct {
	mu            sync.Mutex
	rng           *rand.Rand
	baseLatencyMs float64
	queries       int
}

// NewResolver creates a resolver with the given median lookup latency.
func NewResolver(seed int64, baseLatencyMs float64) *Resolver {
	return &Resolver{rng: randx.New(seed), baseLatencyMs: baseLatencyMs}
}

// Record is a resolved DNS record.
type Record struct {
	Host string
	Addr string
	TTL  float64 // seconds the record may be cached
}

// Lookup resolves host, returning the record and the simulated latency
// in milliseconds of the authoritative query.
func (r *Resolver) Lookup(host string) (Record, float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.queries++
	lat := r.baseLatencyMs * randx.LogNormal(r.rng, 0, 0.8)
	h := fnv.New32a()
	h.Write([]byte(host))
	v := h.Sum32()
	rec := Record{
		Host: host,
		Addr: fmt.Sprintf("10.%d.%d.%d", (v>>16)&0xff, (v>>8)&0xff, v&0xff),
		TTL:  300,
	}
	return rec, lat
}

// Queries returns how many authoritative lookups the resolver served —
// the load metric for the DNS-bottleneck experiment.
func (r *Resolver) Queries() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.queries
}

// Cache is a TTL cache in front of a Resolver, keyed by host name.
// Time is virtual: callers pass the current time in seconds, which lets
// crawl experiments run at simulation speed.
type Cache struct {
	mu       sync.Mutex
	resolver *Resolver
	entries  map[string]cacheEntry
	hits     int
	misses   int
}

type cacheEntry struct {
	rec     Record
	expires float64
}

// NewCache wraps resolver with an empty cache.
func NewCache(resolver *Resolver) *Cache {
	return &Cache{resolver: resolver, entries: make(map[string]cacheEntry)}
}

// Lookup resolves host at virtual time now (seconds), consulting the
// cache first. It returns the record and the latency charged (≈0 for a
// hit, the resolver's latency for a miss).
func (c *Cache) Lookup(host string, now float64) (Record, float64) {
	c.mu.Lock()
	if e, ok := c.entries[host]; ok && e.expires > now {
		c.hits++
		c.mu.Unlock()
		return e.rec, 0.05 // in-memory hit cost
	}
	c.misses++
	c.mu.Unlock()

	rec, lat := c.resolver.Lookup(host)

	c.mu.Lock()
	c.entries[host] = cacheEntry{rec: rec, expires: now + rec.TTL}
	c.mu.Unlock()
	return rec, lat
}

// Stats returns cache hits and misses so far.
func (c *Cache) Stats() (hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// HitRatio returns hits / (hits+misses), or 0 before any lookups.
func (c *Cache) HitRatio() float64 {
	h, m := c.Stats()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}
