package mediator

import (
	"fmt"
	"math/rand"
	"testing"

	"dwr/internal/cluster"
	"dwr/internal/index"
	"dwr/internal/partition"
	"dwr/internal/qproc"
	"dwr/internal/rank"
	"dwr/internal/selection"
)

// topicalSiteDocs builds nSites disjoint sub-collections where site s
// owns the "s<s>w<j>" vocabulary plus a shared tail, mirroring the
// federated fixtures in qproc.
func topicalSiteDocs(seed int64, nSites, perSite int) [][]index.Doc {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]index.Doc, nSites)
	for s := 0; s < nSites; s++ {
		docs := make([]index.Doc, perSite)
		for d := 0; d < perSite; d++ {
			l := 15 + rng.Intn(30)
			terms := make([]string, l)
			for j := range terms {
				if rng.Intn(5) == 0 {
					terms[j] = fmt.Sprintf("shared%02d", rng.Intn(20))
				} else {
					terms[j] = fmt.Sprintf("s%dw%02d", s, rng.Intn(40))
				}
			}
			docs[d] = index.Doc{Ext: s*10000 + d, Terms: terms}
		}
		out[s] = docs
	}
	return out
}

// topicalEngines builds one 2-partition DocEngine per site.
func topicalEngines(t *testing.T, seed int64, nSites, perSite int) []*qproc.DocEngine {
	t.Helper()
	siteDocs := topicalSiteDocs(seed, nSites, perSite)
	engines := make([]*qproc.DocEngine, nSites)
	for s := range engines {
		ids := make([]int, len(siteDocs[s]))
		for i, d := range siteDocs[s] {
			ids[i] = d.Ext
		}
		e, err := qproc.NewDocEngine(index.DefaultOptions(), siteDocs[s], partition.RoundRobinDocs(ids, 2))
		if err != nil {
			t.Fatal(err)
		}
		engines[s] = e
	}
	return engines
}

func engineSources(engines []*qproc.DocEngine) []StatsSource {
	srcs := make([]StatsSource, len(engines))
	for i, e := range engines {
		srcs[i] = EngineSource{Eng: e}
	}
	return srcs
}

func upTo(n int) []int {
	up := make([]int, n)
	for i := range up {
		up[i] = i
	}
	return up
}

// TestMediatorDecideTopicalVsShared: a topical query is pruned to the
// owning site; a shared-vocabulary query falls back to full fan-out
// because no small subset concentrates the selection score mass.
func TestMediatorDecideTopicalVsShared(t *testing.T) {
	m := New(DefaultConfig(), engineSources(topicalEngines(t, 3, 4, 120))...)
	d := m.Decide([]string{"s2w01"}, upTo(4))
	if d.FullFanout {
		t.Fatalf("topical query not pruned: %+v", d)
	}
	if len(d.Sites) != 1 || d.Sites[0] != 2 {
		t.Fatalf("topical query routed to %v, want [2]", d.Sites)
	}
	if d.Confidence < 0.9 {
		t.Fatalf("confidence %v for a single-site vocabulary", d.Confidence)
	}
	d = m.Decide([]string{"shared03"}, upTo(4))
	if !d.FullFanout {
		t.Fatalf("shared query pruned at confidence %v: %+v", d.Confidence, d)
	}
}

// TestMediatorSmallUpSetFullFanout: zero or one live site leaves nothing
// to select between.
func TestMediatorSmallUpSetFullFanout(t *testing.T) {
	m := New(DefaultConfig(), engineSources(topicalEngines(t, 3, 4, 60))...)
	if d := m.Decide([]string{"s0w01"}, nil); !d.FullFanout {
		t.Fatalf("empty up set must full fan-out: %+v", d)
	}
	if d := m.Decide([]string{"s0w01"}, []int{3}); !d.FullFanout {
		t.Fatalf("single-site up set must full fan-out: %+v", d)
	}
}

// TestMediatorRespectsUpSet: a decision never names a site outside the
// caller's up set, even when the selector's favourite is down.
func TestMediatorRespectsUpSet(t *testing.T) {
	m := New(Config{SelectN: 1}, engineSources(topicalEngines(t, 3, 4, 120))...)
	up := []int{0, 1, 3} // site 2 is down
	d := m.Decide([]string{"s2w01", "s1w01"}, up)
	if d.FullFanout {
		return // acceptable: widened because the evidence degraded
	}
	for _, s := range d.Sites {
		if s == 2 {
			t.Fatalf("decision names the down site: %v", d.Sites)
		}
	}
}

// TestMediatorUnknownTermsFullFanout: terms absent from every site's
// statistics give the selector nothing to score, so pruning would be a
// guess — the mediator must widen.
func TestMediatorUnknownTermsFullFanout(t *testing.T) {
	m := New(DefaultConfig(), engineSources(topicalEngines(t, 3, 4, 60))...)
	if d := m.Decide([]string{"zzz-never-indexed"}, upTo(4)); !d.FullFanout {
		t.Fatalf("unknown term pruned: %+v", d)
	}
}

// TestMediatorBoundRatioCutoff: a site whose resident score bounds say
// its best document cannot compete is dropped even when the selector
// gives it df-based mass. Site statistics are real engine statistics;
// only the bounds are overridden so the cutoff is exercised in
// isolation.
func TestMediatorBoundRatioCutoff(t *testing.T) {
	engines := topicalEngines(t, 5, 3, 120)
	var srcs []StatsSource
	for i, e := range engines {
		src := EngineSource{Eng: e}
		st, bounds := src.Collect()
		if i == 1 {
			// Site 1 keeps its df signal but loses its score bounds for
			// the probe term: its documents cannot reach the head.
			delete(bounds, "shared05")
		}
		srcs = append(srcs, StaticStats{Stats: st, Bounds: bounds})
	}
	q := []string{"shared05"}
	loose := New(Config{SelectN: 3, MinConfidence: 0}, srcs...)
	dl := loose.Decide(q, upTo(3))
	tight := New(Config{SelectN: 3, BoundRatio: 0.01, MinConfidence: 0}, srcs...)
	dt := tight.Decide(q, upTo(3))
	if dt.FullFanout {
		t.Fatalf("bound cutoff widened instead of pruning: %+v", dt)
	}
	for _, s := range dt.Sites {
		if s == 1 {
			t.Fatalf("bound cutoff kept the boundless site: %v", dt.Sites)
		}
	}
	if !dl.FullFanout && len(dl.Sites) <= len(dt.Sites) {
		t.Fatalf("cutoff did not narrow the subset: loose %v, tight %v", dl.Sites, dt.Sites)
	}
}

// TestMediatorStoreSourceFreshness: statistics sourced from segment
// stores follow the stores' manifests — after new segments land at a
// previously silent site, the next decision sees the new vocabulary
// without a full selector rebuild.
func TestMediatorStoreSourceFreshness(t *testing.T) {
	stores := []*index.SegmentStore{
		index.NewSegmentStore(index.DefaultOptions(), index.MergePolicy{Radix: 3}),
		index.NewSegmentStore(index.DefaultOptions(), index.MergePolicy{Radix: 3}),
		index.NewSegmentStore(index.DefaultOptions(), index.MergePolicy{Radix: 3}),
	}
	seg := func(base, n int, term string) *index.Index {
		b := index.NewBuilder(index.DefaultOptions())
		for d := 0; d < n; d++ {
			terms := []string{term, term, fmt.Sprintf("filler%d", d%7)}
			if err := b.AddDocument(base+d, terms); err != nil {
				t.Fatal(err)
			}
		}
		return index.MustBuild(b)
	}
	if err := stores[0].Apply(seg(0, 40, "fresh")); err != nil {
		t.Fatal(err)
	}
	if err := stores[1].Apply(seg(1000, 40, "stale")); err != nil {
		t.Fatal(err)
	}
	if err := stores[2].Apply(seg(2000, 40, "other")); err != nil {
		t.Fatal(err)
	}
	m := New(Config{SelectN: 1, MinConfidence: 0.1},
		StoreSource{Store: stores[0]}, StoreSource{Store: stores[1]}, StoreSource{Store: stores[2]})
	d := m.Decide([]string{"fresh"}, upTo(3))
	if d.FullFanout || len(d.Sites) != 1 || d.Sites[0] != 0 {
		t.Fatalf("before the write, want [0], got %+v", d)
	}
	// Site 1's collection shifts: a flood of "fresh" documents lands.
	for i := 0; i < 4; i++ {
		if err := stores[1].Apply(seg(1100+200*i, 200, "fresh")); err != nil {
			t.Fatal(err)
		}
	}
	d = m.Decide([]string{"fresh"}, upTo(3))
	if !d.FullFanout && (len(d.Sites) != 1 || d.Sites[0] != 1) {
		t.Fatalf("after the write, decision still ignores site 1: %+v", d)
	}
	info := m.Info()
	if info.Sites != 3 {
		t.Fatalf("info sites = %d", info.Sites)
	}
	if info.Rebuilds != 1 {
		t.Fatalf("expected exactly one full rebuild (CORI updates in place), got %d", info.Rebuilds)
	}
	if info.Refreshes == 0 {
		t.Fatal("store change did not trigger an incremental refresh")
	}
}

// TestMediatorDecisionsDeterministic: the same statistics and query
// stream yield byte-identical decisions on a fresh mediator.
func TestMediatorDecisionsDeterministic(t *testing.T) {
	queries := [][]string{{"s0w01"}, {"shared02"}, {"s1w05", "s1w06"}, {"s2w00"}, {"shared11", "s0w03"}}
	run := func() []string {
		m := New(DefaultConfig(), engineSources(topicalEngines(t, 3, 4, 120))...)
		var out []string
		for _, q := range queries {
			d := m.Decide(q, upTo(4))
			out = append(out, fmt.Sprintf("%v|%v|%.17g", d.Sites, d.FullFanout, d.Confidence))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs across replays: %q vs %q", i, a[i], b[i])
		}
	}
}

// TestFederationServesAndSamplesRecall wires the whole stack: engines →
// mediator → mediated MultiSite → Federation, then checks queries
// succeed, pruning happens, and sampled Recall@k against the exhaustive
// fan-out stays high.
func TestFederationServesAndSamplesRecall(t *testing.T) {
	const nSites = 4
	engines := topicalEngines(t, 7, nSites, 120)
	med := New(Config{SelectN: 2, MinConfidence: 0.3}, engineSources(engines)...)
	ms := qproc.NewMultiSite(cluster.NewNetwork(1, nSites), qproc.RouteGeo, qproc.WithMediator(med))
	for s, e := range engines {
		ms.Sites = append(ms.Sites, qproc.NewSite(s, s, e, 64, 1000))
	}
	f := NewFederation(ms)
	f.SampleEvery = 1
	if f.K() != nSites || f.MultiSite() != ms {
		t.Fatal("federation does not delegate to the wrapped broker")
	}
	if h := f.Health(); h.Units != nSites {
		t.Fatalf("health: %+v", h)
	}
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 60; i++ {
		var q []string
		if rng.Intn(4) == 0 {
			q = []string{fmt.Sprintf("shared%02d", rng.Intn(20))}
		} else {
			q = []string{fmt.Sprintf("s%dw%02d", rng.Intn(nSites), rng.Intn(40))}
		}
		ms.Now = float64(i % 24)
		r := f.QueryTopK(q, 10)
		if r.Err != nil {
			t.Fatalf("query %v failed: %v", q, r.Err)
		}
	}
	st := f.Stats()
	if st.Selection.Mediated == 0 || st.Selection.SitesSkipped == 0 {
		t.Fatalf("federation never pruned: %s", st.Selection.String())
	}
	if st.Selection.RecallSamples == 0 {
		t.Fatalf("no recall samples despite SampleEvery=1: %s", st.Selection.String())
	}
	if mr := st.Selection.MeanRecall(); mr < 0.95 {
		t.Fatalf("mean sampled recall %.3f < 0.95", mr)
	}
}

// TestRecallEdgeCases pins the Recall helper: empty reference is
// perfect, disjoint answers are zero, overlap is fractional.
func TestRecallEdgeCases(t *testing.T) {
	if r := Recall(nil, nil); r != 1 {
		t.Fatalf("empty reference: %v", r)
	}
	ref := []rank.Result{{Doc: 1}, {Doc: 2}, {Doc: 3}, {Doc: 4}}
	if r := Recall(nil, ref); r != 0 {
		t.Fatalf("empty answer: %v", r)
	}
	got := []rank.Result{{Doc: 2}, {Doc: 4}, {Doc: 9}}
	if r := Recall(got, ref); r != 0.5 {
		t.Fatalf("partial overlap: %v", r)
	}
}

// TestMediatorNonScoredSelectorFullFanout: a selector that only ranks
// (no scores) cannot justify pruning, so every decision widens.
func TestMediatorNonScoredSelectorFullFanout(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NewSelector = func(stats []index.Stats) selection.Selector {
		return selection.NewRandom(1, len(stats))
	}
	m := New(cfg, engineSources(topicalEngines(t, 3, 3, 60))...)
	if d := m.Decide([]string{"s0w01"}, upTo(3)); !d.FullFanout {
		t.Fatalf("unscored selector pruned: %+v", d)
	}
}
