// Package mediator implements the federated query mediator of the
// multi-site chapter (in the spirit of Dushay & French's query mediators
// for federated digital libraries): a tier between the front-end and the
// site brokers that maintains per-site collection statistics — kept
// fresh from the live system via the segment stores' change hooks, not
// offline snapshots — and runs collection selection per query to decide
// which sites the query touches, with full fan-out as the
// low-confidence and fault fallback.
package mediator

import (
	"dwr/internal/index"
	"dwr/internal/qproc"
)

// StatsSource yields one site's current collection statistics: document
// counts, lengths, and document frequencies (the selector's food) plus
// the merged per-term score-bound summaries (the bound cutoff's food).
// Sources whose underlying collection mutates report staleness through
// OnChange so the mediator re-collects lazily, before the next decision
// that needs them.
type StatsSource interface {
	// Collect returns a snapshot of the site's statistics. It must be
	// safe to call concurrently with writes to the underlying
	// collection (all provided sources snapshot immutable state).
	Collect() (index.Stats, map[string]index.TermScoreMeta)
	// OnChange registers fn to be called after any mutation that makes
	// a previous Collect stale. Sources over immutable collections
	// never call fn.
	OnChange(fn func())
}

// StaticStats is a fixed-snapshot source for sites built offline.
type StaticStats struct {
	Stats  index.Stats
	Bounds map[string]index.TermScoreMeta
}

// Collect implements StatsSource.
func (s StaticStats) Collect() (index.Stats, map[string]index.TermScoreMeta) {
	return s.Stats, s.Bounds
}

// OnChange implements StatsSource: static snapshots never go stale.
func (StaticStats) OnChange(func()) {}

// EngineSource sources a DocEngine-backed site: the engine's
// precomputed global statistics plus per-term score bounds merged
// across its partitions. DocEngine indexes are immutable, so the source
// never reports staleness.
type EngineSource struct {
	Eng *qproc.DocEngine
}

// Collect implements StatsSource.
func (s EngineSource) Collect() (index.Stats, map[string]index.TermScoreMeta) {
	st := s.Eng.GlobalStats()
	bounds := make(map[string]index.TermScoreMeta, len(st.DF))
	for p := 0; p < s.Eng.K(); p++ {
		ix := s.Eng.PartIndex(p)
		for t := range st.DF {
			tm, ok := ix.TermScoreMeta(t)
			if !ok {
				continue
			}
			if old, seen := bounds[t]; seen {
				tm = index.MergeTermScoreMeta(old, tm)
			}
			bounds[t] = tm
		}
	}
	return st, bounds
}

// OnChange implements StatsSource: the engine's indexes are immutable.
func (EngineSource) OnChange(func()) {}

// StoreSource sources a continuously indexed site (or live partition):
// statistics are aggregated from the store's current manifest, and the
// store's change hook marks them stale after every flush, merge, or
// delete — the dynamic index keeps the mediator's view of the site
// current, the way it already keeps the result cache honest.
type StoreSource struct {
	Store *index.SegmentStore
}

// Collect implements StatsSource.
func (s StoreSource) Collect() (index.Stats, map[string]index.TermScoreMeta) {
	return s.Store.Manifest().CollectionStats()
}

// OnChange implements StatsSource.
func (s StoreSource) OnChange(fn func()) { s.Store.OnChange(fn) }
