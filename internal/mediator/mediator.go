package mediator

import (
	"sort"
	"sync"

	"dwr/internal/index"
	"dwr/internal/qproc"
	"dwr/internal/rank"
	"dwr/internal/selection"
)

// Updatable is implemented by selectors that can refresh one
// partition's statistics in place (selection.CORI); the mediator uses
// it to avoid rebuilding the whole selector when a single site's
// segment store publishes a new manifest.
type Updatable interface {
	Update(part int, st index.Stats)
}

// Config parameterizes a Mediator.
type Config struct {
	// SelectN is the per-query site budget: at most this many sites are
	// contacted when selection is confident. <= 0 picks max(1, N/4) for
	// N sites — a quarter of the federation.
	SelectN int
	// BoundRatio, when > 0, adds a bound-based cutoff in the spirit of
	// the PR 7 wave scheduler: a candidate site is dropped when its
	// resident query score upper bound (per-term TermScoreMeta folded
	// over the site) is below BoundRatio times the best site's bound —
	// its best possible document cannot compete with the head of the
	// ranking. Unlike the intra-site wave scheduler this is a heuristic
	// at federation level, which is why mediated quality is measured
	// (Recall@k) rather than asserted.
	BoundRatio float64
	// MinConfidence is the pruning-confidence floor: when the selection
	// score mass concentrated on the chosen subset, normalized against
	// the uniform baseline, falls below it, the query falls back to
	// full fan-out. 0 never falls back on confidence.
	MinConfidence float64
	// NewSelector builds the selector from fresh per-site statistics
	// (position i = site i). nil defaults to selection.NewCORI. The
	// returned selector must be deterministic; if it implements
	// Updatable, per-site refreshes are incremental.
	NewSelector func(stats []index.Stats) selection.Selector
}

// DefaultConfig returns the standard mediation configuration: a
// quarter-of-the-federation budget, no bound cutoff, and a modest
// confidence floor.
func DefaultConfig() Config {
	return Config{MinConfidence: 0.15}
}

// Mediator maintains per-site collection statistics and decides, per
// query, which sites to contact (qproc.Mediator). It is safe for
// concurrent use; decisions are deterministic for a fixed sequence of
// statistics changes.
type Mediator struct {
	cfg Config

	mu       sync.Mutex
	sources  []StatsSource
	stats    []index.Stats
	bounds   []map[string]index.TermScoreMeta
	dirty    []bool
	anyDirty bool
	sel      selection.Selector
	scorer   *rank.Scorer

	rebuilds  int
	refreshes int
}

// Interface conformance, checked at compile time.
var _ qproc.Mediator = (*Mediator)(nil)

// New builds a mediator over one StatsSource per site (position i =
// site/unit ID i). Statistics are collected lazily at the first Decide;
// sources that report changes (StoreSource) keep them fresh from then
// on.
func New(cfg Config, sources ...StatsSource) *Mediator {
	m := &Mediator{
		cfg:     cfg,
		sources: sources,
		stats:   make([]index.Stats, len(sources)),
		bounds:  make([]map[string]index.TermScoreMeta, len(sources)),
		dirty:   make([]bool, len(sources)),
	}
	if m.cfg.NewSelector == nil {
		m.cfg.NewSelector = func(stats []index.Stats) selection.Selector {
			return selection.NewCORI(stats)
		}
	}
	for i := range m.dirty {
		m.dirty[i] = true
	}
	m.anyDirty = true
	for i, src := range sources {
		i := i
		src.OnChange(func() {
			m.mu.Lock()
			m.dirty[i] = true
			m.anyDirty = true
			m.mu.Unlock()
		})
	}
	return m
}

// refresh re-collects stale site statistics and brings the selector up
// to date — incrementally when the selector supports it, by rebuild
// otherwise. Called under mu.
func (m *Mediator) refresh() {
	if !m.anyDirty && m.sel != nil {
		return
	}
	upd, incremental := m.sel.(Updatable)
	for i := range m.sources {
		if !m.dirty[i] {
			continue
		}
		st, b := m.sources[i].Collect()
		m.stats[i] = st
		m.bounds[i] = b
		m.dirty[i] = false
		if incremental {
			upd.Update(i, st)
			m.refreshes++
		}
	}
	if m.sel == nil || !incremental {
		m.sel = m.cfg.NewSelector(m.stats)
		m.rebuilds++
	}
	m.anyDirty = false
	m.scorer = rank.NewScorer(rank.FromGlobal(index.MergeStats(m.stats...)))
}

// queryBound bounds the score of any single document at site i for the
// query terms, from the site's resident per-term metadata alone.
func (m *Mediator) queryBound(i int, terms []string) float64 {
	b := m.bounds[i]
	if b == nil {
		return 0
	}
	sum := 0.0
	seen := make(map[string]bool, len(terms))
	for _, t := range terms {
		if seen[t] {
			continue
		}
		seen[t] = true
		tm, ok := b[t]
		if !ok {
			continue
		}
		sum += m.scorer.TermUpperBound(m.scorer.IDF(t), tm)
	}
	return sum
}

// Decide implements qproc.Mediator: rank the up sites with the
// selector, keep the score-bearing ones under the budget (and bound
// cutoff), and prune only when the selection score mass concentrated on
// the chosen subset clears the confidence floor.
func (m *Mediator) Decide(terms []string, up []int) qproc.MediatorDecision {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.refresh()
	if len(up) <= 1 {
		return qproc.MediatorDecision{FullFanout: true}
	}
	sr, ok := m.sel.(selection.ScoredRanker)
	if !ok {
		// No score evidence: a bare permutation cannot justify pruning.
		return qproc.MediatorDecision{FullFanout: true}
	}
	upSet := make(map[int]bool, len(up))
	for _, s := range up {
		upSet[s] = true
	}
	// Candidates: up sites carrying any selection score, best first.
	var cand []selection.ScoredPart
	total := 0.0
	for _, sp := range sr.RankScored(terms) {
		if !upSet[sp.Part] || sp.Score <= 0 {
			continue
		}
		cand = append(cand, sp)
		total += sp.Score
	}
	if len(cand) == 0 || total <= 0 {
		// The query's terms occur nowhere we know of — no basis to prune.
		return qproc.MediatorDecision{FullFanout: true}
	}
	if m.cfg.BoundRatio > 0 {
		var maxB float64
		qb := make([]float64, len(cand))
		for i, sp := range cand {
			qb[i] = m.queryBound(sp.Part, terms)
			if qb[i] > maxB {
				maxB = qb[i]
			}
		}
		if maxB > 0 {
			kept := cand[:0]
			for i, sp := range cand {
				if qb[i] >= m.cfg.BoundRatio*maxB {
					kept = append(kept, sp)
				} else {
					total -= sp.Score
				}
			}
			cand = kept
		}
	}
	budget := m.cfg.SelectN
	if budget <= 0 {
		budget = len(up) / 4
		if budget < 1 {
			budget = 1
		}
	}
	if budget > len(cand) {
		budget = len(cand)
	}
	chosen := cand[:budget]
	share := 0.0
	for _, sp := range chosen {
		share += sp.Score
	}
	share /= total
	// Confidence: how much of the selection score mass the subset holds,
	// in excess of what a uniform spread would give it. 0 = no better
	// than picking sites blindly, 1 = the subset holds everything.
	base := float64(len(chosen)) / float64(len(up))
	conf := 1.0
	if base < 1 {
		conf = (share - base) / (1 - base)
		if conf < 0 {
			conf = 0
		}
		if conf > 1 {
			conf = 1
		}
	}
	if len(chosen) == len(up) {
		return qproc.MediatorDecision{FullFanout: true, Confidence: conf}
	}
	if m.cfg.MinConfidence > 0 && conf < m.cfg.MinConfidence {
		return qproc.MediatorDecision{FullFanout: true, Confidence: conf}
	}
	sites := make([]int, len(chosen))
	for i, sp := range chosen {
		sites[i] = sp.Part
	}
	sort.Ints(sites)
	return qproc.MediatorDecision{Sites: sites, Confidence: conf}
}

// Info is the mediator's operational snapshot.
type Info struct {
	Sites     int // statistics sources registered
	Rebuilds  int // full selector rebuilds
	Refreshes int // incremental per-site statistic refreshes
}

// Info returns operational counters.
func (m *Mediator) Info() Info {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Info{Sites: len(m.sources), Rebuilds: m.rebuilds, Refreshes: m.refreshes}
}
