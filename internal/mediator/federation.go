package mediator

import (
	"sync"

	"dwr/internal/qproc"
	"dwr/internal/rank"
)

// Federation adapts a mediated MultiSite into a concurrent-safe
// qproc.Engine for the HTTP front-end: MultiSite is single-caller (its
// virtual clock, WAN model, and fault schedule are stateful), so
// Federation serializes queries with a mutex, submits each on the
// federated path, and — optionally — samples mediated answers against
// the exhaustive fan-out so EngineStats.Selection reports measured
// Recall@k.
type Federation struct {
	// SampleEvery takes a recall sample on every Nth successfully
	// mediated (pruned, non-cached) query: the same terms are evaluated
	// exhaustively and the mediated answer's Recall@k against it is fed
	// into the selection counters. 0 disables sampling. Set before
	// serving begins.
	SampleEvery int

	mu       sync.Mutex
	ms       *qproc.MultiSite
	mediated int
}

// Interface conformance, checked at compile time.
var _ qproc.Engine = (*Federation)(nil)

// NewFederation wraps ms (which should be configured with
// qproc.WithMediator; without one every query is a plain full fan-out).
func NewFederation(ms *qproc.MultiSite) *Federation {
	return &Federation{ms: ms}
}

// QueryTopK implements qproc.Engine: one federated submission from the
// MultiSite's HomeRegion at its virtual hour Now.
func (f *Federation) QueryTopK(terms []string, k int) qproc.QueryResult {
	f.mu.Lock()
	defer f.mu.Unlock()
	r := f.ms.QueryFederated(terms, qproc.NormalizeQueryKey(terms), f.ms.HomeRegion, f.ms.Now, k)
	if f.SampleEvery > 0 && !r.FullFanout && !r.FromCache && r.Err == nil {
		f.mediated++
		if f.mediated%f.SampleEvery == 0 {
			exh := f.ms.QueryExhaustiveResults(terms, f.ms.Now, k)
			f.ms.ObserveSelectionRecall(Recall(r.Results, exh))
		}
	}
	return r.QueryResult
}

// K implements qproc.Engine.
func (f *Federation) K() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ms.K()
}

// Stats implements qproc.Engine.
func (f *Federation) Stats() qproc.EngineStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ms.Stats()
}

// Health implements qproc.Engine.
func (f *Federation) Health() qproc.Health {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ms.Health()
}

// MultiSite returns the wrapped broker; callers must hold no queries in
// flight when driving it directly.
func (f *Federation) MultiSite() *qproc.MultiSite { return f.ms }

// Recall measures result quality the way the collection-selection
// literature does: the fraction of the reference answer's documents
// (the exhaustive fan-out's top-k) present in the observed answer. An
// empty reference counts as perfect — there was nothing to miss.
func Recall(got, reference []rank.Result) float64 {
	if len(reference) == 0 {
		return 1
	}
	in := make(map[int]bool, len(got))
	for _, r := range got {
		in[r.Doc] = true
	}
	hit := 0
	for _, r := range reference {
		if in[r.Doc] {
			hit++
		}
	}
	return float64(hit) / float64(len(reference))
}
