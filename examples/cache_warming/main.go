// cache_warming replays a Zipfian query log through the broker result
// cache under three replacement policies — LRU, LFU, and SDC (static +
// dynamic cache, Fagni et al.) — and prints their hit ratios side by
// side. SDC freezes the most popular queries of a historical log sample
// into a static half that eviction can never touch, which is exactly
// the property that wins on heavy-tailed streams: the head of the
// distribution stops competing with the tail for cache slots.
//
//	go run ./examples/cache_warming
package main

import (
	"fmt"
	"log"
	"strings"

	"dwr/internal/index"
	"dwr/internal/metrics"
	"dwr/internal/partition"
	"dwr/internal/qproc"
	"dwr/internal/querylog"
	"dwr/internal/simweb"
)

func main() {
	// Corpus and query log: the first warmN instances are "yesterday's
	// log" (the sample SDC mines for its static set), the rest are the
	// live stream every policy is measured on.
	wcfg := simweb.DefaultConfig()
	wcfg.Hosts = 100
	web := simweb.New(wcfg)
	var docs []index.Doc
	for _, p := range web.Pages {
		if p.Private {
			continue
		}
		vocab := web.Vocabs[web.Hosts[p.Host].Lang]
		terms := make([]string, len(p.Terms))
		for i, tid := range p.Terms {
			terms[i] = vocab.Word(int(tid))
		}
		docs = append(docs, index.Doc{Ext: p.ID, Terms: terms})
	}

	lcfg := querylog.DefaultConfig()
	lcfg.Total = 12000
	lcfg.Distinct = 1500
	lg := querylog.Generate(web, lcfg)
	const warmN = 4000
	warm, stream := lg.Queries[:warmN], lg.Queries[warmN:]
	fmt.Printf("corpus: %d documents; warming sample: %d queries; live stream: %d queries\n\n",
		len(docs), len(warm), len(stream))

	ids := make([]int, len(docs))
	for i, d := range docs {
		ids[i] = d.Ext
	}
	const parts = 4
	// warmEng is a cache-less engine used only to compute the answers
	// SDC pins into its static half; the measured engines are built
	// per policy below with their cache attached at construction.
	warmEng, err := qproc.NewDocEngine(index.DefaultOptions(), docs, partition.RoundRobinDocs(ids, parts))
	if err != nil {
		log.Fatal(err)
	}
	opts := qproc.DocQueryOptions{K: 10, Stats: qproc.GlobalPrecomputed}

	// SDC's static set: the most popular keys of the warming sample,
	// translated to the exact cache keys the engine will look up.
	warmLog := &querylog.Log{Queries: warm}
	const capacity = 192
	var static []string
	for _, key := range warmLog.TopKeys(capacity / 2) {
		static = append(static, qproc.DocCacheKey(strings.Fields(key), opts))
	}

	configs := []struct {
		name string
		cfg  qproc.ResultCacheConfig
	}{
		{"LRU", qproc.ResultCacheConfig{Capacity: capacity, Policy: qproc.CacheLRU}},
		{"LFU", qproc.ResultCacheConfig{Capacity: capacity, Policy: qproc.CacheLFU}},
		{"SDC", qproc.ResultCacheConfig{Capacity: capacity, Policy: qproc.CacheSDC, StaticKeys: static}},
	}

	tbl := metrics.NewTable(fmt.Sprintf("result-cache hit ratio, %d entries, same %d-query stream", capacity, len(stream)),
		"policy", "hits", "misses", "hit ratio")
	for _, c := range configs {
		rc := qproc.NewResultCache(c.cfg)
		if c.cfg.Policy == qproc.CacheSDC {
			// Warming: answer the static queries on the cache-less
			// engine (so the measured stream starts with clean counters)
			// and pin their results into the frozen half before the
			// stream arrives.
			for _, key := range warmLog.TopKeys(capacity / 2) {
				terms := strings.Fields(key)
				rc.Put(qproc.DocCacheKey(terms, opts), warmEng.Query(terms, opts))
			}
		}
		// The measured engine gets the prebuilt (possibly pre-warmed)
		// cache at construction.
		eng, err := qproc.NewDocEngine(index.DefaultOptions(), docs,
			partition.RoundRobinDocs(ids, parts), qproc.WithResultCacheInstance(rc))
		if err != nil {
			log.Fatal(err)
		}
		for _, q := range stream {
			eng.Query(q.Terms, opts)
		}
		st := rc.Stats()
		tbl.AddRow(c.name, st.Hits, st.Misses, metrics.FormatPercent(st.HitRatio()))
	}
	fmt.Println(tbl.String())
	fmt.Println("SDC's static half is immune to eviction, so burst-popular tail queries")
	fmt.Println("cannot push the head of the Zipf distribution out of the cache.")
}
