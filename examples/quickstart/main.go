// Quickstart: build a complete distributed Web retrieval engine in a few
// lines — synthetic Web, distributed crawl, partitioned index — and
// answer a query against it.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dwr/internal/core"
)

func main() {
	// Build with defaults: 80 hosts, 4 crawling agents, 4 query
	// processors, round-robin document partitioning.
	engine, err := core.Build(core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("crawled %d pages (%.1f%% coverage), indexed %d documents across %d partitions\n",
		engine.CrawlInfo.DistinctPages, engine.CrawlInfo.Coverage*100,
		len(engine.Docs), engine.Config.Partitions)

	// Query with a couple of terms taken from the crawled collection
	// (the synthetic Web has a synthetic vocabulary).
	doc := engine.Docs[len(engine.Docs)/2]
	query := doc.Terms[0] + " " + doc.Terms[1]
	fmt.Printf("\nquery: %q\n", query)
	for i, r := range engine.Search(query, core.SearchOptions{K: 5}) {
		fmt.Printf("%d. %-40s score=%.4f\n", i+1, r.URL, r.Score)
	}

	// The same query, contacting only the 2 best partitions according to
	// the engine's collection-selection function (CORI here).
	fmt.Println("\nsame query, selective (best 2 of 4 partitions):")
	for i, r := range engine.Search(query, core.SearchOptions{K: 5, SelectN: 2}) {
		fmt.Printf("%d. %-40s score=%.4f\n", i+1, r.URL, r.Score)
	}
}
