// loadbalance reproduces the Figure 2 phenomenon interactively: the same
// query workload replayed through a document-partitioned system and a
// pipelined term-partitioned system over 8 servers, with per-server busy
// load printed as bars — then shows Moffat-style bin-packing repairing
// the term-partitioned imbalance.
//
//	go run ./examples/loadbalance
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"dwr/internal/index"
	"dwr/internal/metrics"
	"dwr/internal/partition"
	"dwr/internal/qproc"
	"dwr/internal/querylog"
	"dwr/internal/randx"
	"dwr/internal/simweb"
)

func main() {
	// Corpus and query log.
	wcfg := simweb.DefaultConfig()
	wcfg.Hosts = 150
	web := simweb.New(wcfg)
	var docs []index.Doc
	for _, p := range web.Pages {
		if p.Private {
			continue
		}
		vocab := web.Vocabs[web.Hosts[p.Host].Lang]
		terms := make([]string, len(p.Terms))
		for i, tid := range p.Terms {
			terms[i] = vocab.Word(int(tid))
		}
		docs = append(docs, index.Doc{Ext: p.ID, Terms: terms})
	}
	lg := querylog.Generate(web, querylog.DefaultConfig())
	fmt.Printf("corpus: %d documents; workload: %d queries\n\n", len(docs), len(lg.Queries))

	ids := make([]int, len(docs))
	for i, d := range docs {
		ids[i] = d.Ext
	}
	central := index.NewBuilder(index.DefaultOptions())
	for _, d := range docs {
		central.AddDocument(d.Ext, d.Terms)
	}
	cIx := index.MustBuild(central)

	const k = 8
	replay := func(name string, busy []float64) {
		im := metrics.NewImbalance(busy)
		fmt.Printf("%s (CV %.2f, max/mean %.2f):\n", name, im.CV, im.MaxOver)
		for s, l := range im.Loads {
			fmt.Printf("  s%d %6.0fms %s\n", s, l, metrics.Bar(l/(2.5*im.Mean), 40))
		}
		fmt.Println()
	}

	// Document-partitioned: flat busy load.
	de, err := qproc.NewDocEngine(index.DefaultOptions(), docs, partition.RoundRobinDocs(ids, k))
	if err != nil {
		log.Fatal(err)
	}
	for _, q := range lg.Queries[:3000] {
		de.Query(q.Terms, qproc.DocQueryOptions{K: 10, Stats: qproc.GlobalPrecomputed})
	}
	replay("document-partitioned", de.BusyMs())

	// The same replay through the serial broker and the parallel
	// scatter-gather: answers and busy-load accounting are identical at
	// any width; only wall-clock time changes with the core count. Each
	// width is a fresh engine configured via WithWorkers.
	timeReplay := func(workers int) time.Duration {
		e, err := qproc.NewDocEngine(index.DefaultOptions(), docs,
			partition.RoundRobinDocs(ids, k), qproc.WithWorkers(workers))
		if err != nil {
			log.Fatal(err)
		}
		t0 := time.Now()
		for _, q := range lg.Queries[:3000] {
			e.Query(q.Terms, qproc.DocQueryOptions{K: 10, Stats: qproc.GlobalPrecomputed})
		}
		return time.Since(t0)
	}
	serialT := timeReplay(1)
	parallelT := timeReplay(0)
	fmt.Printf("broker wall-clock (%d cores): serial %v, parallel %v (%.2fx)\n\n",
		runtime.GOMAXPROCS(0), serialT.Round(time.Millisecond),
		parallelT.Round(time.Millisecond), float64(serialT)/float64(parallelT))

	// Term-partitioned, random assignment: the Figure 2 imbalance.
	run := func(tp partition.TermPartition) []float64 {
		te, err := qproc.NewTermEngine(index.DefaultOptions(), docs, tp)
		if err != nil {
			log.Fatal(err)
		}
		for _, q := range lg.Queries[:3000] {
			te.Query(q.Terms, 10)
		}
		return te.BusyMs()
	}
	replay("term-partitioned, random assignment",
		run(partition.RandomTerms(randx.New(7), cIx.Terms(), k)))

	// Term-partitioned with Moffat bin-packing: weight = query frequency
	// × posting length, heaviest term to the lightest bin.
	qf := lg.TermWeights()
	weight := func(t string) float64 { return float64(qf[t]+1) * float64(cIx.DF(t)) }
	replay("term-partitioned, bin-packed by query-log weight",
		run(partition.BinPackTerms(cIx.Terms(), weight, k)))
}
