// serving walks through the Section 5 capacity model live: a real
// document-partitioned engine wrapped in the serving front-end
// (internal/server) and driven by deterministic workload generators
// (internal/loadgen). Three load points tell the story:
//
//  1. open loop below the G/G/c bound λ < c/E[S] — everything is
//     served, latency sits near E[S];
//
//  2. open loop at 2x the bound — the token bucket and the adaptive
//     shedder drop the excess (batch traffic first) so that admitted
//     queries keep a bounded p99 instead of an exploding queue;
//
//  3. closed loop, a finite user population with think time — the
//     population self-limits to N/(E[R]+Z), so nothing needs shedding
//     even though the workers stay saturated.
//
//     go run ./examples/serving
package main

import (
	"fmt"
	"log"

	"dwr/internal/core"
	"dwr/internal/loadgen"
	"dwr/internal/metrics"
	"dwr/internal/querylog"
	"dwr/internal/queueing"
	"dwr/internal/server"
)

func main() {
	// A small end-to-end engine: synthetic Web, distributed crawl,
	// 4 document partitions.
	cfg := core.DefaultConfig()
	cfg.Web.Hosts = 40
	eng, err := core.Build(cfg)
	if err != nil {
		log.Fatal(err)
	}
	lcfg := querylog.DefaultConfig()
	lcfg.Seed = cfg.Seed + 5
	lcfg.Total = 3000
	lcfg.Distinct = 400
	lg := querylog.Generate(eng.Web, lcfg)

	// The bound divides by E[S], the mean service time of real engine
	// evaluations — measure it on the head of the log.
	var svc metrics.Sample
	for _, q := range lg.Queries[:300] {
		svc.Add(eng.Query.QueryTopK(q.Terms, 10).LatencyMs)
	}
	meanMs := svc.Mean()
	const c = 50 // worker pool width (the paper's Apache uses 150)
	bound := queueing.CapacityBound(c, meanMs/1000)
	fmt.Printf("engine E[S] = %.2f ms; G/G/%d bound c/E[S] = %.0f qps\n\n", meanMs, c, bound)

	scfg := server.Config{
		Workers:    c,
		QueueCap:   2 * c,
		DeadlineMs: 50 * meanMs,
		AdmitRate:  1.05 * bound,
		Shed:       server.ShedConfig{TargetP99Ms: 10 * meanMs, Window: 200},
		Seed:       1,
	}
	show := func(name string, r server.Report) {
		shed := r.ShedOverload + r.ShedAdmission + r.ShedQueueFull + r.EvictedDeadline
		it := r.Class[server.Interactive]
		fmt.Printf("%s:\n", name)
		fmt.Printf("  offered %.0f qps -> goodput %.0f qps, shed %.1f%%, util %.0f%%\n",
			r.OfferedQPS, r.GoodputQPS, 100*float64(shed)/float64(r.Offered), 100*r.Utilization)
		fmt.Printf("  interactive latency p50/p99 = %.2f/%.2f ms, max queue %d, shed level %.2f\n\n",
			it.P50Ms, it.P99Ms, r.MaxQueueLen, r.FinalShedLevel)
	}

	// 1. Below the bound: stable, nothing shed.
	under := loadgen.Open(lg, loadgen.OpenConfig{Seed: 2, Rate: 0.7 * bound, N: 3000, BatchFrac: 0.2})
	show("open loop at 0.7x the bound", server.Run(eng.Query, scfg, under))

	// 2. Twice the bound: no admission control could serve this, so the
	// front-end's job is to fail the right way — shed the excess (batch
	// first) and keep p99 bounded for what it admits.
	over := loadgen.Open(lg, loadgen.OpenConfig{Seed: 3, Rate: 2 * bound, N: 3000, BatchFrac: 0.2})
	show("open loop at 2.0x the bound", server.Run(eng.Query, scfg, over))

	// 3. Closed loop: 4c users each wait for their answer and think
	// before asking again, so the offered rate adapts to the service
	// rate by itself — run without admission limits to show it.
	ccfg := server.Config{Workers: c, QueueCap: 4 * c, Seed: 1}
	closed := loadgen.Closed(lg, loadgen.ClosedConfig{
		Seed: 4, Users: 4 * c, ThinkMeanSec: meanMs / 1000, N: 3000,
	})
	show(fmt.Sprintf("closed loop, %d users, think E[Z]=E[S]", 4*c), server.Run(eng.Query, ccfg, closed))

	fmt.Println("The open loop past the bound must shed; the closed loop never needs to.")
}
