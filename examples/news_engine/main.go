// news_engine combines the paper's dynamic-collection machinery: a
// stream of "news articles" is indexed online (geometrically merged
// segments, searchable while updating — §4's online index maintenance),
// two users with different habits get personalized rankings whose state
// survives a replica crash (§5 personalization), and a drift detector
// notices when the audience's interests shift (§5 external factors).
//
//	go run ./examples/news_engine
package main

import (
	"fmt"
	"log"

	"dwr/internal/index"
	"dwr/internal/personal"
	"dwr/internal/querylog"
	"dwr/internal/rank"
	"dwr/internal/simweb"
)

func main() {
	// Article source: pages of a synthetic web, streamed in as if
	// published over time.
	wcfg := simweb.DefaultConfig()
	wcfg.Hosts = 60
	web := simweb.New(wcfg)

	dyn := index.NewDynamic(index.DefaultOptions(), 32, 3)
	published := 0
	topicOf := map[int]int{}
	for _, p := range web.Pages {
		if p.Private || published >= 600 {
			continue
		}
		vocab := web.Vocabs[web.Hosts[p.Host].Lang]
		terms := make([]string, len(p.Terms))
		for i, tid := range p.Terms {
			terms[i] = vocab.Word(int(tid))
		}
		if err := dyn.Add(p.ID, terms); err != nil {
			log.Fatal(err)
		}
		topicOf[p.ID] = p.Topic
		published++
		if published%200 == 0 {
			m := dyn.Maintenance()
			fmt.Printf("published %d articles: %d segments, %d merges, %d manifest swaps (readers never blocked)\n",
				published, m.Segments, m.Merges, m.Swaps)
		}
	}

	// A breaking story arrives and is searchable immediately.
	dyn.Add(1_000_000, []string{"breaking", "story", "about", "everything"})
	if rs := dyn.Search([]string{"breaking", "story"}, 3); len(rs) > 0 {
		fmt.Printf("\nbreaking story indexed and found instantly: doc %d (score %.3f)\n",
			rs[0].Doc, rs[0].Score)
	}
	// Retraction: delete works just as immediately.
	dyn.Delete(1_000_000)
	if rs := dyn.Search([]string{"breaking", "story"}, 3); len(rs) == 0 {
		fmt.Println("retracted story gone from results")
	}

	// A query both users issue: same base results, different order. Pick
	// a term whose results span at least two topics so preferences can
	// show (common head-of-Zipf words qualify).
	var sample string
	var base []index.SearchResult
	for _, p := range web.Pages {
		if p.Private {
			continue
		}
		cand := web.Vocabs[web.Hosts[p.Host].Lang].Word(int(p.Terms[0]))
		rs := dyn.Search([]string{cand}, 8)
		topics := map[int]bool{}
		for _, r := range rs {
			topics[topicOf[r.Doc]] = true
		}
		if len(rs) >= 4 && len(topics) >= 2 {
			sample, base = cand, rs
			break
		}
	}

	// Personalization: two readers with opposite habits — ana reads the
	// topic of the currently last-ranked result, ben the first's.
	store := personal.NewStore(3)
	anaTopic := topicOf[base[len(base)-1].Doc]
	benTopic := topicOf[base[0].Doc]
	for i := 0; i < 30; i++ {
		store.RecordClick("ana", anaTopic)
		store.RecordClick("ben", benTopic)
	}
	store.FailReplica(0) // primary crash: nothing may be lost
	ana, _ := store.Get("ana")
	ben, _ := store.Get("ben")
	fmt.Printf("\nprofiles survived a primary crash: ana v%d, ben v%d\n", ana.Version, ben.Version)
	baseR := make([]rank.Result, 0, len(base))
	for _, r := range base {
		baseR = append(baseR, rank.Result{Doc: r.Doc, Score: r.Score})
	}
	fmt.Printf("\nquery %q: %d base results\n", sample, len(base))
	tf := func(doc int) int { return topicOf[doc] }
	fmt.Printf("ana sees first:  %v\n", firstDocs(personal.Rerank(baseR, tf, ana, 1.0), 3))
	fmt.Printf("ben sees first:  %v\n", firstDocs(personal.Rerank(baseR, tf, ben, 1.0), 3))

	// Drift detection over the audience's query stream.
	lcfg := querylog.DefaultConfig()
	lcfg.Days = 20
	lcfg.DriftAmp = 0.9
	lcfg.Total = 8000
	lg := querylog.Generate(web, lcfg)
	dd := querylog.NewDriftDetector(lg.Topics, 400, 0.25)
	for _, q := range lg.Queries {
		if dd.Observe(q.Topic) {
			fmt.Printf("\ndrift detected on day %d (hour %.0f): audience interests shifted — time to repartition\n",
				q.Day, q.Hour)
			break
		}
	}
}

func firstDocs(rs []rank.Result, n int) []int {
	out := []int{}
	for i := 0; i < n && i < len(rs); i++ {
		out = append(out, rs[i].Doc)
	}
	return out
}
