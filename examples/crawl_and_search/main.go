// crawl_and_search walks through the paper's offline pipeline a layer at
// a time, using the substrate packages directly rather than the core
// facade: generate a Web, crawl it with distributed agents, parse the
// crawled HTML, build the inverted index with the single-pass (SPIMI)
// builder, and evaluate BM25 queries — then run an incremental re-crawl
// and show the freshness economics of If-Modified-Since and sitemaps.
//
//	go run ./examples/crawl_and_search
package main

import (
	"fmt"
	"log"
	"sort"

	"dwr/internal/crawler"
	"dwr/internal/index"
	"dwr/internal/rank"
	"dwr/internal/simweb"
	"dwr/internal/textproc"
)

func main() {
	// 1. A synthetic Web: 150 servers with power-law sizes, flaky hosts,
	// broken HTML, robots.txt — everything Section 3 warns about.
	wcfg := simweb.DefaultConfig()
	wcfg.Hosts = 150
	web := simweb.New(wcfg)
	fmt.Printf("generated %d hosts, %d pages (%d crawlable)\n",
		len(web.Hosts), len(web.Pages), web.CrawlablePages())

	// 2. Distributed crawl: 6 agents under consistent-hash assignment,
	// batched URL exchange, politeness, DNS caching.
	ccfg := crawler.DefaultConfig()
	ccfg.Agents = 6
	c := crawler.New(web, ccfg)
	var seeds []string
	for _, h := range web.Hosts {
		if len(h.Pages) > 0 {
			seeds = append(seeds, web.URL(h.Pages[0]))
		}
	}
	c.Seed(seeds)
	st := c.Run()
	fmt.Printf("crawl: %d pages, coverage %.1f%%, %d URL exchanges in %d messages, %.0f virtual seconds\n",
		st.DistinctPages, st.Coverage*100, st.URLsExchanged, st.ExchangeMessages, st.VirtualSeconds)

	// 3. Parse and index with the single-pass builder (1 MiB memory
	// budget, spill runs merged on disk).
	b, err := index.NewSPIMIBuilder(index.DefaultOptions(), 1<<20, "")
	if err != nil {
		log.Fatal(err)
	}
	ids := make([]int, 0, len(c.Pages()))
	for pid := range c.Pages() {
		ids = append(ids, pid)
	}
	sort.Ints(ids)
	for _, pid := range ids {
		page := c.Pages()[pid]
		doc := textproc.ParseHTML(page.HTML)
		terms := textproc.Tokenize(doc.Text)
		if len(terms) == 0 {
			continue
		}
		if err := b.AddDocument(pid, terms); err != nil {
			log.Fatal(err)
		}
	}
	ix, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("index: %d docs, %d terms, %d KB of postings, %d spill runs merged\n",
		ix.NumDocs(), ix.NumTerms(), ix.SizeBytes()/1024, b.Spills())

	// 4. Query with BM25.
	scorer := rank.NewScorer(rank.FromIndex(ix))
	sample := ix.Terms()[len(ix.Terms())/3]
	results, es := rank.EvaluateOR(ix, scorer, []string{sample}, 5)
	fmt.Printf("\nquery %q (%d postings decoded):\n", sample, es.PostingsDecoded)
	for i, r := range results {
		fmt.Printf("%d. %-40s score=%.4f\n", i+1, web.URL(r.Doc), r.Score)
	}

	// 5. Freshness: re-crawl two weeks later, with and without sitemaps.
	plain := c.Recrawl(15, false)
	maps := c.Recrawl(30, true)
	fmt.Printf("\nre-crawl day 15: %d requests, %d unchanged (304), %d refetched\n",
		plain.ConditionalRequests, plain.NotModified, plain.Refetched)
	fmt.Printf("re-crawl day 30 with sitemaps: %d requests avoided entirely, %d issued\n",
		maps.SkippedViaSitemap, maps.ConditionalRequests)
}
