// multisite_failover demonstrates the Figure 3 system of Section 5:
// three sites in different regions, each a full query-processing
// replica with a result cache, connected by a WAN. Queries route to the
// nearest site; when a site fails they fail over across the WAN; when
// every replica of a result's processors is gone, stale cached results
// mask the outage.
//
//	go run ./examples/multisite_failover
package main

import (
	"fmt"
	"log"

	"dwr/internal/cluster"
	"dwr/internal/core"
	"dwr/internal/faultsim"
	"dwr/internal/index"
	"dwr/internal/partition"
	"dwr/internal/qproc"
)

func main() {
	// Build one engine's corpus via the full pipeline, then replicate it
	// across three sites.
	cfg := core.DefaultConfig()
	cfg.Web.Hosts = 60
	engine, err := core.Build(cfg)
	if err != nil {
		log.Fatal(err)
	}
	ids := make([]int, len(engine.Docs))
	for i, d := range engine.Docs {
		ids[i] = d.Ext
	}

	m := qproc.NewMultiSite(cluster.NewNetwork(1, 3), qproc.RouteGeo)
	m.CacheTTL = 1 // results stay fresh for one virtual hour
	m.OffloadThreshold = 0.7
	// Each site's engine carries a deterministic fault injector so
	// processor failures can be staged (and healed) mid-run.
	var injs []*faultsim.Injector
	for s := 0; s < 3; s++ {
		inj := faultsim.New(int64(100 + s))
		injs = append(injs, inj)
		dp := partition.RoundRobinDocs(ids, 4)
		e, err := qproc.NewDocEngine(index.DefaultOptions(), engine.Docs, dp,
			qproc.WithFaultPolicy(qproc.DefaultFaultPolicy()),
			qproc.WithInjector(inj))
		if err != nil {
			log.Fatal(err)
		}
		m.Sites = append(m.Sites, qproc.NewSite(s, s, e, 1024, 0))
	}

	terms := engine.Docs[0].Terms[:2]
	key := terms[0] + " " + terms[1]

	// Normal operation: the client in region 0 is served by site 0.
	r := m.Submit(terms, key, 0, 1.0, 5)
	fmt.Printf("t=1h  normal:    coordinator=site%d executor=site%d latency=%.1fms results=%d\n",
		r.Coordinator, r.Executor, r.LatencyMs, len(r.Results))

	// Repeat query: served from site 0's cache.
	r = m.Submit(terms, key, 0, 1.5, 5)
	fmt.Printf("t=1.5h cached:    fromCache=%v latency=%.1fms\n", r.FromCache, r.LatencyMs)

	// Site 0 goes down for hours 2..6: the query fails over to the next
	// region across the WAN (higher latency, same results).
	m.Sites[0].Outages = []cluster.Outage{{Start: 2, End: 6}}
	r = m.Submit(terms, key, 0, 3.0, 5)
	fmt.Printf("t=3h  failover:  coordinator=site%d executor=site%d latency=%.1fms results=%d\n",
		r.Coordinator, r.Executor, r.LatencyMs, len(r.Results))

	// Catastrophe at hour 4: sites 1 and 2 also lose their query
	// processors. Only site 0's coordinator is... also down. At hour 6
	// site 0's coordinator is back but every query processor across the
	// system is dead — crashes injected on every partition replica via
	// the fault simulator — and the stale cache answers.
	m.Sites[1].Outages = []cluster.Outage{{Start: 4, End: 24}}
	m.Sites[2].Outages = []cluster.Outage{{Start: 4, End: 24}}
	for p := 0; p < m.Sites[0].Engine.K(); p++ {
		injs[0].Unit(p, faultsim.Spec{Crash: true})
	}
	h := m.Sites[0].Engine.Health()
	fmt.Printf("t=6h  health:    site 0 engine %d/%d partitions up, down=%v\n",
		h.Live(), h.Units, h.Down)
	r = m.Submit(terms, key, 0, 6.5, 5)
	fmt.Printf("t=6.5h outage:    fromCache=%v stale=%v results=%d (cached results mask the outage)\n",
		r.FromCache, r.Stale, len(r.Results))

	// Incremental query processing: all sites answer, fastest first.
	// Healing = clearing the injected crash specs.
	for p := 0; p < m.Sites[0].Engine.K(); p++ {
		injs[0].ClearUnit(p)
	}
	m.Sites[1].Outages, m.Sites[2].Outages = nil, nil
	fmt.Println("\nincremental processing (batches as sites answer):")
	for _, b := range m.QueryIncremental(terms, 0, 8, 5) {
		fmt.Printf("  after %6.1fms: %d results (site %d answered)\n",
			b.AfterMs, len(b.Results), b.Site)
	}
}
