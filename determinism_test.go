package dwr

import (
	"fmt"
	"reflect"
	"testing"

	"dwr/internal/core"
	"dwr/internal/metrics"
	"dwr/internal/qproc"
	"dwr/internal/querylog"
)

// TestEndToEndDeterminism is the regression test behind dwrlint's
// determinism analyzer: it runs the same end-to-end scenario — corpus
// synthesis, partitioning, index construction, a Zipf query log, and a
// fault-injected robust query path — twice from one seed and requires
// byte-identical per-query results plus identical fault accounting.
// Any wall-clock or global-RNG leak into a deterministic package shows
// up here as a diff between the two replays.
func TestEndToEndDeterminism(t *testing.T) {
	run := func() ([]string, metrics.FaultCounters) {
		cfg := core.DefaultConfig()
		cfg.Web.Hosts = 40
		base, err := core.Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		lcfg := querylog.DefaultConfig()
		lcfg.Seed = cfg.Seed + 5
		lcfg.Total = 500
		lcfg.Distinct = 120
		lg := querylog.Generate(base.Web, lcfg)

		faults := core.FaultConfig{Seed: cfg.Seed + 9, FlakyP: 0.10, SlowP: 0.20, SlowMeanMs: 15}
		eng, err := qproc.NewDocEngine(cfg.Index, base.Docs, base.Partition,
			qproc.WithWorkers(0),
			qproc.WithInjector(faults.Injector()),
			qproc.WithFaultPolicy(qproc.DefaultFaultPolicy()))
		if err != nil {
			t.Fatal(err)
		}

		results := make([]string, len(lg.Queries))
		for i, q := range lg.Queries {
			results[i] = fmt.Sprintf("%+v", eng.QueryTopK(q.Terms, 10))
		}
		return results, eng.Stats().Faults
	}

	first, firstFaults := run()
	second, secondFaults := run()

	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("query %d diverged between identically seeded runs:\nfirst:  %s\nsecond: %s",
				i, first[i], second[i])
		}
	}
	if !reflect.DeepEqual(firstFaults, secondFaults) {
		t.Fatalf("fault counters diverged between identically seeded runs:\nfirst:  %+v\nsecond: %+v",
			firstFaults, secondFaults)
	}
	if firstFaults.FaultsSeen == 0 {
		t.Fatal("fault injector never engaged; the scenario is not exercising the robust path")
	}
}
