package dwr

import (
	"fmt"
	"reflect"
	"testing"

	"dwr/internal/core"
	"dwr/internal/crawler"
	"dwr/internal/index"
	"dwr/internal/metrics"
	"dwr/internal/qproc"
	"dwr/internal/querylog"
	"dwr/internal/simweb"
	"dwr/internal/textproc"
)

// TestEndToEndDeterminism is the regression test behind dwrlint's
// determinism analyzer: it runs the same end-to-end scenario — corpus
// synthesis, partitioning, index construction, a Zipf query log, and a
// fault-injected robust query path — twice from one seed and requires
// byte-identical per-query results plus identical fault accounting.
// Any wall-clock or global-RNG leak into a deterministic package shows
// up here as a diff between the two replays.
func TestEndToEndDeterminism(t *testing.T) {
	run := func() ([]string, metrics.FaultCounters) {
		cfg := core.DefaultConfig()
		cfg.Web.Hosts = 40
		base, err := core.Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		lcfg := querylog.DefaultConfig()
		lcfg.Seed = cfg.Seed + 5
		lcfg.Total = 500
		lcfg.Distinct = 120
		lg := querylog.Generate(base.Web, lcfg)

		faults := core.FaultConfig{Seed: cfg.Seed + 9, FlakyP: 0.10, SlowP: 0.20, SlowMeanMs: 15}
		eng, err := qproc.NewDocEngine(cfg.Index, base.Docs, base.Partition,
			qproc.WithWorkers(0),
			qproc.WithInjector(faults.Injector()),
			qproc.WithFaultPolicy(qproc.DefaultFaultPolicy()))
		if err != nil {
			t.Fatal(err)
		}

		results := make([]string, len(lg.Queries))
		for i, q := range lg.Queries {
			results[i] = fmt.Sprintf("%+v", eng.QueryTopK(q.Terms, 10))
		}
		return results, eng.Stats().Faults
	}

	first, firstFaults := run()
	second, secondFaults := run()

	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("query %d diverged between identically seeded runs:\nfirst:  %s\nsecond: %s",
				i, first[i], second[i])
		}
	}
	if !reflect.DeepEqual(firstFaults, secondFaults) {
		t.Fatalf("fault counters diverged between identically seeded runs:\nfirst:  %+v\nsecond: %+v",
			firstFaults, secondFaults)
	}
	if firstFaults.FaultsSeen == 0 {
		t.Fatal("fault injector never engaged; the scenario is not exercising the robust path")
	}
}

// TestStreamingPipelineDeterminism is the continuous-indexing analogue
// of TestEndToEndDeterminism: a crawl streams pages through OnPage into
// per-partition segment writers while a LiveEngine answers queries
// interleaved with the ingest (one query per 20 pages, mid-stream, so
// answers depend on exactly which manifests had been swapped in when).
// Two identically seeded replays must serve byte-identical answers and
// identical segment-maintenance counters.
func TestStreamingPipelineDeterminism(t *testing.T) {
	const parts = 3
	run := func() ([]string, []index.SegmentStats) {
		wcfg := simweb.DefaultConfig()
		wcfg.Hosts = 40
		web := simweb.New(wcfg)
		lcfg := querylog.DefaultConfig()
		lcfg.Seed = wcfg.Seed + 5
		lcfg.Total = 200
		lcfg.Distinct = 60
		lg := querylog.Generate(web, lcfg)

		stores := make([]*index.SegmentStore, parts)
		writers := make([]*index.SegmentWriter, parts)
		for i := range stores {
			stores[i] = index.NewSegmentStore(index.DefaultOptions(), index.MergePolicy{Radix: 3})
			writers[i] = index.NewSegmentWriter(stores[i], 24)
		}
		eng, err := qproc.NewLiveEngine(stores,
			qproc.WithResultCache(qproc.ResultCacheConfig{Capacity: 64}))
		if err != nil {
			t.Fatal(err)
		}

		var answers []string
		pages, qi := 0, 0
		c := crawler.New(web, crawler.DefaultConfig())
		var seeds []string
		for _, h := range web.Hosts {
			if len(h.Pages) > 0 {
				seeds = append(seeds, web.URL(h.Pages[0]))
			}
		}
		c.Seed(seeds)
		c.OnPage(func(p *crawler.Page) {
			terms := textproc.Tokenize(textproc.ParseHTML(p.HTML).Text)
			if len(terms) == 0 {
				return
			}
			if err := writers[p.PageID%parts].AddDocument(p.PageID, terms); err != nil {
				return // refetch
			}
			pages++
			if pages%20 == 0 {
				q := lg.Queries[qi%len(lg.Queries)]
				answers = append(answers, fmt.Sprintf("%+v", eng.Query(q.Terms, 10)))
				qi++
			}
		})
		c.Run()
		for _, w := range writers {
			if err := w.Cut(); err != nil {
				t.Fatal(err)
			}
		}
		for _, q := range lg.Queries[:50] {
			answers = append(answers, fmt.Sprintf("%+v", eng.Query(q.Terms, 10)))
		}
		stats := make([]index.SegmentStats, parts)
		for i, s := range stores {
			stats[i] = s.Stats()
		}
		return answers, stats
	}

	first, firstStats := run()
	second, secondStats := run()
	if len(first) != len(second) {
		t.Fatalf("replays served different query counts: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("streamed answer %d diverged between identically seeded runs:\nfirst:  %s\nsecond: %s",
				i, first[i], second[i])
		}
	}
	if !reflect.DeepEqual(firstStats, secondStats) {
		t.Fatalf("segment maintenance diverged between identically seeded runs:\nfirst:  %+v\nsecond: %+v",
			firstStats, secondStats)
	}
	if firstStats[0].Merges == 0 {
		t.Fatal("no merges ran; the scenario is not exercising the cascade")
	}
}
